//! Arena-backed storage for a single particle's tree.
//!
//! Each particle of the dynamic-tree model carries one regression tree. The
//! tree partitions the input space into axis-aligned hyper-rectangles; every
//! leaf holds the indices of the training observations that fall inside it
//! plus their sufficient statistics ([`LeafStats`]).
//!
//! The three structural moves of Taddy et al. (Figure 4 of the paper) are
//! implemented here: **stay** (no change), **grow** (split the leaf that
//! received the new observation) and **prune** (collapse the leaf's parent
//! back into a leaf).
//!
//! # Storage layout
//!
//! [`ParticleTree`] is a struct-of-arrays arena:
//!
//! * **Nodes** are parallel `u32`/`f64` columns (`dim`, `threshold`,
//!   `left`/`right`, `parent`, `depth`, `stats`) indexed by node id. A leaf
//!   is marked by `dim == LEAF_NODE`, a slot freed by a prune (and reusable
//!   by a later grow) by `dim == FREE_NODE`. No per-node heap allocation
//!   exists anywhere.
//! * **Points** live in one flat intrusive linked list: `next[p]` is the
//!   next observation index in the same leaf as observation `p`, and every
//!   node carries a `head`/`tail` pair. Inserting an observation is O(1),
//!   growing relinks the list in place, pruning concatenates two lists in
//!   O(1) — no per-leaf `Vec<usize>` is ever allocated or copied.
//!
//! Cloning a tree is therefore a handful of `memcpy`s, which is what makes
//! the copy-on-write particle resampling in [`super`] cheap.
//!
//! # Caches
//!
//! Two derived views are cached *on the tree* and kept eagerly fresh by
//! every mutating operation:
//!
//! * `flat` — the dense [`FlatNode`] traversal array used by every scoring
//!   path. Rebuilt only when a structural move (grow/prune) lands; inserts
//!   do not touch the tree's shape, so steady-state scoring does zero
//!   flattening work.
//! * `moments` — one [`LeafMoments`] per node (valid for live leaves):
//!   predictive mean/variance, log marginal likelihood and the cached
//!   log-density constants. Refreshed per affected leaf on insert, grow and
//!   prune.
//!
//! Mutating methods take a [`MomentCtx`] (the shared prior plus the
//! `ln Γ` table) so the caches never go stale; `validate_caches` recomputes
//! both views from scratch and compares bitwise, which the root-level
//! property tests exercise after arbitrary fit/update sequences.

use alic_data::io::JsonValue;
use alic_stats::FeatureMatrix;

use crate::leaf::{LeafMoments, LeafPrior, LeafStats, LnGammaTable};
use crate::snapshot;

/// A proposed axis-aligned split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Feature dimension the split tests.
    pub dimension: usize,
    /// Points with `x[dimension] <= threshold` go to the left child.
    pub threshold: f64,
}

/// Marker stored in the `dim` column for live leaves.
const LEAF_NODE: u32 = u32::MAX;
/// Marker stored in the `dim` column for freed (prunable-reusable) slots.
const FREE_NODE: u32 = u32::MAX - 1;
/// Linked-list terminator / "no node" sentinel.
const NONE: u32 = u32::MAX;

/// A compact, traversal-only copy of one tree node (24 bytes). Every scoring
/// path traverses these dense arrays; the tree keeps its own copy cached and
/// structurally fresh, so batch calls never re-flatten.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatNode {
    /// Split dimension, or [`FLAT_LEAF`] when the node is a leaf.
    pub dimension: u32,
    /// Left child index (internal nodes only).
    pub left: u32,
    /// Right child index (internal nodes only).
    pub right: u32,
    /// Split threshold (internal nodes only).
    pub threshold: f64,
}

/// Marker stored in [`FlatNode::dimension`] for leaves (and free slots,
/// which a traversal can never reach).
pub const FLAT_LEAF: u32 = u32::MAX;

/// Index of the leaf containing `x` in a flattened tree.
#[inline]
pub fn find_leaf_flat(nodes: &[FlatNode], x: &[f64]) -> usize {
    let mut index = 0usize;
    loop {
        let node = nodes[index];
        if node.dimension == FLAT_LEAF {
            return index;
        }
        index = if x[node.dimension as usize] <= node.threshold {
            node.left as usize
        } else {
            node.right as usize
        };
    }
}

/// Width of a scoring traversal block: one u64 reach word.
pub const TRAVERSE_BLOCK: usize = 64;

/// Reach-mask density at which the partition compare switches from the
/// set-bit walk to one full-width SIMD mask build over the 64-lane column.
const DENSE_REACH: u32 = 32;

/// Column-major staging of up to [`TRAVERSE_BLOCK`] query rows, reused
/// across every tree a scoring pass pushes the block through. Lanes past
/// `len` are zero-padded; their comparison bits are garbage that the reach
/// masks never select.
#[derive(Debug, Clone, Default)]
pub struct QueryBlock {
    /// `cols[d * TRAVERSE_BLOCK + i]` is dimension `d` of query `i`.
    cols: Vec<f64>,
    len: usize,
}

impl QueryBlock {
    /// Refills the staging from `rows` (at most [`TRAVERSE_BLOCK`] of them),
    /// keeping the allocation.
    pub fn fill(&mut self, dim: usize, rows: &[&[f64]]) {
        assert!(rows.len() <= TRAVERSE_BLOCK, "a block is at most one word");
        self.len = rows.len();
        self.cols.clear();
        self.cols.resize(dim * TRAVERSE_BLOCK, 0.0);
        for (i, row) in rows.iter().enumerate() {
            for d in 0..dim {
                self.cols[d * TRAVERSE_BLOCK + i] = row[d];
            }
        }
    }

    /// Number of staged queries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the staging is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 64-lane column of `dimension`.
    fn column(&self, dimension: usize) -> &[f64] {
        &self.cols[dimension * TRAVERSE_BLOCK..(dimension + 1) * TRAVERSE_BLOCK]
    }

    /// Reach word with one bit per staged query.
    fn full_mask(&self) -> u64 {
        match self.len {
            64 => u64::MAX,
            n => (1u64 << n) - 1,
        }
    }
}

/// Resolves the leaves of a staged query block in **one walk of the tree**,
/// invoking `on_leaf(lane, leaf_node)` once per query.
///
/// [`find_leaf_flat`] walks one query at a time — per level a dependent node
/// load plus a data-dependent split branch, re-reading every node once per
/// query that crosses it. This kernel inverts the loop: a depth-first walk
/// of the tree carries a u64 **reach word** (bit `i` = "query `i` reaches
/// this node"), splits it at each internal node with the node's comparison
/// mask, and descends only into subtrees whose reach word is non-zero. Each
/// node is read once per *block* instead of once per query, the compare over
/// a node's survivors is a branch-free mask build (full-width SIMD when the
/// reach word is dense, a set-bit walk when sparse), and leaf assignment is
/// a `trailing_zeros` sweep of the final reach words. Callers fuse their
/// per-query gather into `on_leaf` instead of staging leaf indices.
///
/// Every query undergoes exactly the comparisons its serial traversal would
/// (those of the nodes on its root-to-leaf path, against the same
/// thresholds), so the resolved leaves are identical to per-query
/// [`find_leaf_flat`] calls. Lanes sharing a leaf are reported in ascending
/// lane order; across leaves the order follows the walk, which only matters
/// to sinks that accumulate across lanes (none do — every caller keeps
/// per-lane accumulators).
///
/// `stack` is reusable scratch for the DFS; it is cleared on entry.
pub fn for_each_block_leaf(
    nodes: &[FlatNode],
    block: &QueryBlock,
    stack: &mut Vec<(u32, u64)>,
    mut on_leaf: impl FnMut(usize, u32),
) {
    if block.is_empty() {
        return;
    }
    stack.clear();
    stack.push((0, block.full_mask()));
    while let Some((index, reach)) = stack.pop() {
        let node = nodes[index as usize];
        if node.dimension == FLAT_LEAF {
            let mut bits = reach;
            while bits != 0 {
                on_leaf(bits.trailing_zeros() as usize, index);
                bits &= bits - 1;
            }
            continue;
        }
        let column = block.column(node.dimension as usize);
        let compare = if reach.count_ones() >= DENSE_REACH {
            full_compare_mask(column, node.threshold)
        } else {
            let mut word = 0u64;
            let mut bits = reach;
            while bits != 0 {
                let i = bits.trailing_zeros();
                word |= u64::from(column[i as usize] <= node.threshold) << i;
                bits &= bits - 1;
            }
            word
        };
        let left = reach & compare;
        let right = reach & !compare;
        if right != 0 {
            stack.push((node.right, right));
        }
        if left != 0 {
            stack.push((node.left, left));
        }
    }
}

/// [`for_each_block_leaf`] writing the leaf index of query `i` to
/// `leaf_of[i]` — for callers that want the assignments themselves rather
/// than a fused gather.
pub fn find_leaves_flat_block(
    nodes: &[FlatNode],
    block: &QueryBlock,
    leaf_of: &mut [u32],
    stack: &mut Vec<(u32, u64)>,
) {
    debug_assert!(leaf_of.len() >= block.len());
    for_each_block_leaf(nodes, block, stack, |lane, leaf| leaf_of[lane] = leaf);
}

/// `<= threshold` mask over one full 64-lane column (SIMD-built on x86-64).
#[inline]
fn full_compare_mask(column: &[f64], threshold: f64) -> u64 {
    let mut word = [0u64; 1];
    #[cfg(target_arch = "x86_64")]
    alic_stats::bitset::fill_mask_le_simd_into(column, threshold, &mut word);
    #[cfg(not(target_arch = "x86_64"))]
    alic_stats::bitset::fill_mask_le_into(column, threshold, &mut word);
    word[0]
}

std::thread_local! {
    /// Per-thread target buffers for the grow move's two-pass child
    /// statistics.
    static GROW_TARGETS: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Leaf statistics of a buffered target slice via a two-pass sum: the mean
/// from `Σy`, then `m2 = Σ(y − mean)²` — the numerically robust batch
/// counterpart of the online update, with no per-point division.
fn stats_of_targets(ys: &[f64]) -> LeafStats {
    if ys.is_empty() {
        return LeafStats::new();
    }
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &y in ys {
        sum += y;
        min = min.min(y);
        max = max.max(y);
    }
    let mean = sum / ys.len() as f64;
    let mut m2 = 0.0;
    for &y in ys {
        let d = y - mean;
        m2 += d * d;
    }
    LeafStats::from_parts(ys.len(), mean, m2, min, max)
}

/// Fresh `[∞, −∞]` per-dimension bound pairs.
fn empty_bounds(n_dims: usize) -> Vec<f64> {
    let mut b = Vec::with_capacity(2 * n_dims);
    for _ in 0..n_dims {
        b.push(f64::INFINITY);
        b.push(f64::NEG_INFINITY);
    }
    b
}

/// Expands interleaved `[lo, hi]` pairs with one feature row.
#[inline]
fn expand_bounds(bounds: &mut [f64], row: &[f64]) {
    for (pair, &v) in bounds.chunks_exact_mut(2).zip(row) {
        pair[0] = pair[0].min(v);
        pair[1] = pair[1].max(v);
    }
}

/// The shared inputs every cache refresh needs: the model's leaf prior and
/// its memoized `ln Γ` table (which must cover the tree's largest leaf
/// count).
#[derive(Debug, Clone, Copy)]
pub struct MomentCtx<'a> {
    /// Leaf prior shared by every particle.
    pub prior: &'a LeafPrior,
    /// `ln Γ` memo table, extended once per update by the model.
    pub table: &'a LnGammaTable,
}

/// One particle's regression tree in arena storage. See the [module
/// documentation](self) for the layout.
#[derive(Debug, PartialEq)]
pub struct ParticleTree {
    /// Split dimension per node, or [`LEAF_NODE`] / [`FREE_NODE`].
    dim: Vec<u32>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    /// Parent node id ([`NONE`] for the root).
    parent: Vec<u32>,
    depth: Vec<u32>,
    stats: Vec<LeafStats>,
    /// First observation index in the node's point list ([`NONE`] if empty).
    head: Vec<u32>,
    /// Last observation index in the node's point list.
    tail: Vec<u32>,
    /// Intrusive per-observation "next point in the same leaf" links.
    next: Vec<u32>,
    /// Node slots freed by prunes, reusable by grows (LIFO).
    free: Vec<u32>,
    /// Monotone upper bound on any node depth this tree has ever reached
    /// (prunes do not lower it). Lets the model size its per-depth
    /// split-prior table without scanning nodes.
    depth_bound: u32,
    /// Feature dimensionality (width of the `bounds` rows).
    n_dims: usize,
    /// Per-node, per-dimension `[lo, hi]` pairs over the node's points:
    /// `bounds[node*2*n_dims + 2*d]` is the minimum of feature `d`,
    /// `…+ 2*d + 1` the maximum. Maintained exactly: inserts expand, grows
    /// recompute during their partition walk, prunes take the children's
    /// union — so a leaf's bounds always equal a fresh scan of its points,
    /// and split proposals read min/max without touching the points at all.
    bounds: Vec<f64>,
    /// Cached dense traversal array (always structurally fresh).
    flat: Vec<FlatNode>,
    /// Cached per-node derived leaf quantities (fresh for live leaves).
    moments: Vec<LeafMoments>,
}

impl Clone for ParticleTree {
    fn clone(&self) -> Self {
        ParticleTree {
            dim: self.dim.clone(),
            threshold: self.threshold.clone(),
            left: self.left.clone(),
            right: self.right.clone(),
            parent: self.parent.clone(),
            depth: self.depth.clone(),
            stats: self.stats.clone(),
            head: self.head.clone(),
            tail: self.tail.clone(),
            next: self.next.clone(),
            free: self.free.clone(),
            depth_bound: self.depth_bound,
            n_dims: self.n_dims,
            bounds: self.bounds.clone(),
            flat: self.flat.clone(),
            moments: self.moments.clone(),
        }
    }

    /// Copy-assignment that reuses the destination's allocations — the
    /// copy-on-write resampler clones diverging particles into recycled
    /// arena slots through this, so steady-state updates allocate nothing.
    fn clone_from(&mut self, source: &Self) {
        self.dim.clone_from(&source.dim);
        self.threshold.clone_from(&source.threshold);
        self.left.clone_from(&source.left);
        self.right.clone_from(&source.right);
        self.parent.clone_from(&source.parent);
        self.depth.clone_from(&source.depth);
        self.stats.clone_from(&source.stats);
        self.head.clone_from(&source.head);
        self.tail.clone_from(&source.tail);
        self.next.clone_from(&source.next);
        self.free.clone_from(&source.free);
        self.depth_bound = source.depth_bound;
        self.n_dims = source.n_dims;
        self.bounds.clone_from(&source.bounds);
        self.flat.clone_from(&source.flat);
        self.moments.clone_from(&source.moments);
    }
}

/// Iterator over the observation indices stored in one leaf, in insertion
/// order.
#[derive(Debug, Clone)]
pub struct LeafPoints<'a> {
    next: &'a [u32],
    cursor: u32,
}

impl Iterator for LeafPoints<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.cursor == NONE {
            return None;
        }
        let point = self.cursor as usize;
        self.cursor = self.next[point];
        Some(point)
    }
}

impl ParticleTree {
    /// Creates a tree consisting of a single root leaf containing `points`.
    pub fn new_root(points: &[usize], xs: &FeatureMatrix, ys: &[f64], ctx: &MomentCtx<'_>) -> Self {
        let n_dims = xs.dim();
        let mut stats = LeafStats::new();
        let mut bounds = empty_bounds(n_dims);
        for &i in points {
            stats.push(ys[i]);
            expand_bounds(&mut bounds, xs.row(i));
        }
        let max_point = points.iter().copied().max().map_or(0, |m| m + 1);
        let mut next = vec![NONE; max_point];
        let mut head = NONE;
        let mut tail = NONE;
        for &p in points {
            let p = p as u32;
            if head == NONE {
                head = p;
            } else {
                next[tail as usize] = p;
            }
            tail = p;
        }
        let mut tree = ParticleTree {
            dim: vec![LEAF_NODE],
            threshold: vec![0.0],
            left: vec![NONE],
            right: vec![NONE],
            parent: vec![NONE],
            depth: vec![0],
            stats: vec![stats],
            head: vec![head],
            tail: vec![tail],
            next,
            free: Vec::new(),
            depth_bound: 0,
            n_dims,
            bounds,
            flat: Vec::new(),
            moments: vec![stats.moments(ctx.prior, ctx.table)],
        };
        tree.refresh_flat();
        tree
    }

    /// A node-less placeholder used to move a tree out of its slot without
    /// allocating. Never traversed.
    pub(crate) fn placeholder() -> Self {
        ParticleTree {
            dim: Vec::new(),
            threshold: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            parent: Vec::new(),
            depth: Vec::new(),
            stats: Vec::new(),
            head: Vec::new(),
            tail: Vec::new(),
            next: Vec::new(),
            free: Vec::new(),
            depth_bound: 0,
            n_dims: 0,
            bounds: Vec::new(),
            flat: Vec::new(),
            moments: Vec::new(),
        }
    }

    /// The cached dense traversal array. Always structurally fresh; pass it
    /// to [`find_leaf_flat`].
    #[inline]
    pub fn flat_nodes(&self) -> &[FlatNode] {
        &self.flat
    }

    /// The cached per-node derived quantities (valid at live-leaf indices).
    #[inline]
    pub fn leaf_moments(&self) -> &[LeafMoments] {
        &self.moments
    }

    /// Writes a freshly computed traversal copy of this tree into `out`
    /// (cleared first). Node indices are preserved, so flat leaf indices can
    /// be used with [`ParticleTree::leaf_stats`]. The cached
    /// [`flat_nodes`](ParticleTree::flat_nodes) view is maintained with
    /// exactly this computation.
    pub fn flatten_into(&self, out: &mut Vec<FlatNode>) {
        out.clear();
        out.extend((0..self.dim.len()).map(|i| {
            if self.dim[i] < FREE_NODE {
                FlatNode {
                    dimension: self.dim[i],
                    left: self.left[i],
                    right: self.right[i],
                    threshold: self.threshold[i],
                }
            } else {
                FlatNode {
                    dimension: FLAT_LEAF,
                    left: 0,
                    right: 0,
                    threshold: 0.0,
                }
            }
        }));
    }

    fn refresh_flat(&mut self) {
        let mut flat = std::mem::take(&mut self.flat);
        self.flatten_into(&mut flat);
        self.flat = flat;
    }

    /// Index of the leaf whose hyper-rectangle contains `x`.
    #[inline]
    pub fn find_leaf(&self, x: &[f64]) -> usize {
        find_leaf_flat(&self.flat, x)
    }

    /// Leaf statistics of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not a live leaf.
    pub fn leaf_stats(&self, index: usize) -> &LeafStats {
        assert!(self.dim[index] == LEAF_NODE, "node {index} is not a leaf");
        &self.stats[index]
    }

    /// Observation indices stored in leaf `index`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not a live leaf.
    pub fn leaf_points(&self, index: usize) -> LeafPoints<'_> {
        assert!(self.dim[index] == LEAF_NODE, "node {index} is not a leaf");
        LeafPoints {
            next: &self.next,
            cursor: self.head[index],
        }
    }

    /// Depth of node `index` (the root has depth 0).
    pub fn depth_of(&self, index: usize) -> usize {
        self.depth[index] as usize
    }

    /// Monotone upper bound on any depth this tree has ever reached.
    pub fn depth_bound(&self) -> usize {
        self.depth_bound as usize
    }

    /// Per-dimension `[lo, hi]` pairs over the points of leaf `index`
    /// (interleaved: `[lo₀, hi₀, lo₁, hi₁, …]`). Exactly equal to a fresh
    /// scan of the leaf's points.
    #[inline]
    pub fn leaf_bounds(&self, index: usize) -> &[f64] {
        &self.bounds[index * 2 * self.n_dims..(index + 1) * 2 * self.n_dims]
    }

    /// Parent of node `index`.
    pub fn parent_of(&self, index: usize) -> Option<usize> {
        match self.parent[index] {
            NONE => None,
            p => Some(p as usize),
        }
    }

    /// The sibling of leaf `index`, if the sibling is itself a leaf.
    pub fn leaf_sibling(&self, index: usize) -> Option<usize> {
        let parent = self.parent_of(index)?;
        if self.dim[parent] >= FREE_NODE {
            return None;
        }
        let sibling = if self.left[parent] as usize == index {
            self.right[parent] as usize
        } else {
            self.left[parent] as usize
        };
        (self.dim[sibling] == LEAF_NODE).then_some(sibling)
    }

    /// Number of live leaves.
    pub fn leaf_count(&self) -> usize {
        self.dim.iter().filter(|&&d| d == LEAF_NODE).count()
    }

    /// Maximum depth over live leaves.
    pub fn max_depth(&self) -> usize {
        (0..self.dim.len())
            .filter(|&i| self.dim[i] == LEAF_NODE)
            .map(|i| self.depth[i] as usize)
            .max()
            .unwrap_or(0)
    }

    /// Total number of points stored across live leaves.
    pub fn point_count(&self) -> usize {
        (0..self.dim.len())
            .filter(|&i| self.dim[i] == LEAF_NODE)
            .map(|i| self.stats[i].count())
            .sum()
    }

    /// Iterates over the indices of all live leaves.
    pub fn leaves(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.dim.len()).filter(|&i| self.dim[i] == LEAF_NODE)
    }

    /// Adds observation `point` at `x` (with target `y`) to the leaf
    /// containing `x` and returns that leaf's index.
    pub fn insert(&mut self, x: &[f64], point: usize, y: f64, ctx: &MomentCtx<'_>) -> usize {
        let leaf = self.find_leaf(x);
        self.insert_at(leaf, point, x, y, ctx);
        leaf
    }

    /// Adds observation `point` at `x` (with target `y`) to `leaf` directly —
    /// used when the caller already knows the leaf from the weighting
    /// traversal.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not a live leaf.
    pub fn insert_at(&mut self, leaf: usize, point: usize, x: &[f64], y: f64, ctx: &MomentCtx<'_>) {
        assert!(self.dim[leaf] == LEAF_NODE, "node {leaf} is not a leaf");
        if point >= self.next.len() {
            self.next.resize(point + 1, NONE);
        }
        let p = point as u32;
        self.next[point] = NONE;
        if self.head[leaf] == NONE {
            self.head[leaf] = p;
        } else {
            self.next[self.tail[leaf] as usize] = p;
        }
        self.tail[leaf] = p;
        self.stats[leaf].push(y);
        expand_bounds(
            &mut self.bounds[leaf * 2 * self.n_dims..(leaf + 1) * 2 * self.n_dims],
            x,
        );
        self.moments[leaf] = self.stats[leaf].moments(ctx.prior, ctx.table);
    }

    /// Log posterior-predictive density of `y` at the leaf containing `x`
    /// (the particle weight used during resampling), evaluated from the
    /// cached flat traversal and leaf moments.
    pub fn log_weight(&self, x: &[f64], y: f64) -> f64 {
        self.moments[self.find_leaf(x)].log_density(y)
    }

    /// Splits leaf `index` with `split`, distributing its points by the
    /// feature matrix `xs`. Returns `false` (and leaves the tree unchanged)
    /// if either child would receive fewer than `min_leaf` points.
    pub fn grow(
        &mut self,
        index: usize,
        split: Split,
        xs: &FeatureMatrix,
        ys: &[f64],
        min_leaf: usize,
        ctx: &MomentCtx<'_>,
    ) -> bool {
        if self.dim[index] != LEAF_NODE {
            return false;
        }
        // Count the partition without touching the links, so a rejected
        // split leaves the list intact.
        let mut left_count = 0usize;
        let mut total = 0usize;
        for p in self.leaf_points(index) {
            total += 1;
            if xs.get(p, split.dimension) <= split.threshold {
                left_count += 1;
            }
        }
        if left_count < min_leaf || total - left_count < min_leaf {
            return false;
        }
        self.grow_unchecked(index, split, xs, ys, ctx);
        true
    }

    /// [`grow`](ParticleTree::grow) without the child-size pre-pass, for
    /// callers whose split proposal already verified both children meet the
    /// minimum size (the particle-update apply path: `propose_split` counts
    /// with the exact same comparisons).
    ///
    /// # Panics
    ///
    /// Panics if `index` is not a live leaf.
    pub fn grow_unchecked(
        &mut self,
        index: usize,
        split: Split,
        xs: &FeatureMatrix,
        ys: &[f64],
        ctx: &MomentCtx<'_>,
    ) {
        assert!(self.dim[index] == LEAF_NODE, "node {index} is not a leaf");
        // Relink the list into two chains, buffering each side's targets so
        // the child statistics come from a numerically robust two-pass sum
        // (mean first, then Σ(y − mean)²) without a per-point division, and
        // accumulating the children's exact per-dimension bounds.
        let depth = self.depth[index] + 1;
        self.depth_bound = self.depth_bound.max(depth);
        let n_dims = self.n_dims;
        let mut left_bounds = empty_bounds(n_dims);
        let mut right_bounds = empty_bounds(n_dims);
        let (mut lh, mut lt, mut rh, mut rt) = (NONE, NONE, NONE, NONE);
        let (left_stats, right_stats) = GROW_TARGETS.with(|cell| {
            let (left_ys, right_ys) = &mut *cell.borrow_mut();
            left_ys.clear();
            right_ys.clear();
            let mut cursor = self.head[index];
            while cursor != NONE {
                let p = cursor as usize;
                cursor = self.next[p];
                let row = xs.row(p);
                if row[split.dimension] <= split.threshold {
                    left_ys.push(ys[p]);
                    expand_bounds(&mut left_bounds, row);
                    if lh == NONE {
                        lh = p as u32;
                    } else {
                        self.next[lt as usize] = p as u32;
                    }
                    lt = p as u32;
                } else {
                    right_ys.push(ys[p]);
                    expand_bounds(&mut right_bounds, row);
                    if rh == NONE {
                        rh = p as u32;
                    } else {
                        self.next[rt as usize] = p as u32;
                    }
                    rt = p as u32;
                }
                // `p` is now the tail of its chain; appending the next point
                // to the same chain overwrites this link.
                self.next[p] = NONE;
            }
            (stats_of_targets(left_ys), stats_of_targets(right_ys))
        });
        let left = self.allocate(depth, index as u32, left_stats, &left_bounds, lh, lt, ctx);
        let right = self.allocate(depth, index as u32, right_stats, &right_bounds, rh, rt, ctx);
        self.dim[index] = split.dimension as u32;
        self.threshold[index] = split.threshold;
        self.left[index] = left;
        self.right[index] = right;
        self.head[index] = NONE;
        self.tail[index] = NONE;
        // Incremental flat-cache maintenance: a grow changes exactly the
        // split node and (re)uses two leaf slots — every other entry of the
        // dense traversal array is untouched, so rebuilding it would do
        // O(nodes) redundant work per move.
        self.flat.resize(
            self.dim.len(),
            FlatNode {
                dimension: FLAT_LEAF,
                left: 0,
                right: 0,
                threshold: 0.0,
            },
        );
        self.flat[index] = FlatNode {
            dimension: split.dimension as u32,
            left,
            right,
            threshold: split.threshold,
        };
        for child in [left, right] {
            self.flat[child as usize] = FlatNode {
                dimension: FLAT_LEAF,
                left: 0,
                right: 0,
                threshold: 0.0,
            };
        }
    }

    /// Collapses the parent of leaf `index` back into a leaf containing the
    /// union of its two children's points (left list first, then right).
    /// Returns `false` if `index` is the root or its sibling is not a leaf.
    pub fn prune(&mut self, index: usize, ctx: &MomentCtx<'_>) -> bool {
        let Some(parent) = self.parent_of(index) else {
            return false;
        };
        let Some(sibling) = self.leaf_sibling(index) else {
            return false;
        };
        let (left, right) = (self.left[parent] as usize, self.right[parent] as usize);
        // Concatenate the two point lists in left-then-right order and merge
        // the sufficient statistics in O(1).
        let (head, tail) = if self.head[left] == NONE {
            (self.head[right], self.tail[right])
        } else if self.head[right] == NONE {
            (self.head[left], self.tail[left])
        } else {
            self.next[self.tail[left] as usize] = self.head[right];
            (self.head[left], self.tail[right])
        };
        let mut stats = self.stats[left];
        stats.merge(&self.stats[right]);
        // The merged leaf's bounds are the union of the children's (exact:
        // every point is in one of the two children).
        let w = 2 * self.n_dims;
        for d in 0..self.n_dims {
            let lo = self.bounds[left * w + 2 * d].min(self.bounds[right * w + 2 * d]);
            let hi = self.bounds[left * w + 2 * d + 1].max(self.bounds[right * w + 2 * d + 1]);
            self.bounds[parent * w + 2 * d] = lo;
            self.bounds[parent * w + 2 * d + 1] = hi;
        }
        for child in [index, sibling] {
            self.dim[child] = FREE_NODE;
            self.head[child] = NONE;
            self.tail[child] = NONE;
            self.stats[child] = LeafStats::new();
            self.free.push(child as u32);
        }
        self.dim[parent] = LEAF_NODE;
        self.left[parent] = NONE;
        self.right[parent] = NONE;
        self.head[parent] = head;
        self.tail[parent] = tail;
        self.stats[parent] = stats;
        self.moments[parent] = stats.moments(ctx.prior, ctx.table);
        // Incremental flat-cache maintenance: the parent becomes a leaf and
        // the two freed children revert to the (never-traversed) leaf
        // encoding free slots share.
        for node in [parent, index, sibling] {
            self.flat[node] = FlatNode {
                dimension: FLAT_LEAF,
                left: 0,
                right: 0,
                threshold: 0.0,
            };
        }
        true
    }

    /// Allocates a leaf node (reusing a freed slot when available) and
    /// returns its id.
    #[allow(clippy::too_many_arguments)]
    fn allocate(
        &mut self,
        depth: u32,
        parent: u32,
        stats: LeafStats,
        bounds: &[f64],
        head: u32,
        tail: u32,
        ctx: &MomentCtx<'_>,
    ) -> u32 {
        let moments = stats.moments(ctx.prior, ctx.table);
        let w = 2 * self.n_dims;
        if let Some(slot) = self.free.pop() {
            let i = slot as usize;
            self.dim[i] = LEAF_NODE;
            self.threshold[i] = 0.0;
            self.left[i] = NONE;
            self.right[i] = NONE;
            self.parent[i] = parent;
            self.depth[i] = depth;
            self.stats[i] = stats;
            self.head[i] = head;
            self.tail[i] = tail;
            self.bounds[i * w..(i + 1) * w].copy_from_slice(bounds);
            self.moments[i] = moments;
            slot
        } else {
            self.dim.push(LEAF_NODE);
            self.threshold.push(0.0);
            self.left.push(NONE);
            self.right.push(NONE);
            self.parent.push(parent);
            self.depth.push(depth);
            self.stats.push(stats);
            self.head.push(head);
            self.tail.push(tail);
            self.bounds.extend_from_slice(bounds);
            self.moments.push(moments);
            (self.dim.len() - 1) as u32
        }
    }

    /// Recomputes every derived view — the flat traversal array, the leaf
    /// moments and the per-leaf bounds — from scratch and compares them
    /// bitwise against the maintained caches. Used by the root-level
    /// property tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence found.
    pub fn validate_caches(&self, xs: &FeatureMatrix, ctx: &MomentCtx<'_>) -> Result<(), String> {
        let mut fresh = Vec::new();
        self.flatten_into(&mut fresh);
        if fresh != self.flat {
            return Err(format!(
                "cached flat nodes diverged: cached {:?} vs fresh {:?}",
                self.flat, fresh
            ));
        }
        for leaf in self.leaves() {
            let expect = self.stats[leaf].moments(ctx.prior, ctx.table);
            if expect != self.moments[leaf] {
                return Err(format!(
                    "cached moments of leaf {leaf} diverged: cached {:?} vs fresh {expect:?}",
                    self.moments[leaf]
                ));
            }
        }
        // The linked lists must agree with the statistics counts, and the
        // incrementally maintained bounds with a fresh scan of the points.
        for leaf in self.leaves() {
            let listed = self.leaf_points(leaf).count();
            if listed != self.stats[leaf].count() {
                return Err(format!(
                    "leaf {leaf} lists {listed} points but counts {}",
                    self.stats[leaf].count()
                ));
            }
            let mut fresh = empty_bounds(self.n_dims);
            for p in self.leaf_points(leaf) {
                expand_bounds(&mut fresh, xs.row(p));
            }
            if fresh != self.leaf_bounds(leaf) {
                return Err(format!(
                    "cached bounds of leaf {leaf} diverged: cached {:?} vs fresh {fresh:?}",
                    self.leaf_bounds(leaf)
                ));
            }
        }
        Ok(())
    }

    /// Serializes the arena columns into a snapshot object (hex-packed via
    /// [`crate::snapshot`]). The cached flat traversal and per-node moments
    /// are derived views recomputed on restore, so only the defining columns
    /// are stored.
    pub(crate) fn to_snapshot(&self) -> crate::Result<JsonValue> {
        let n = self.dim.len();
        let mut stat_count = Vec::with_capacity(n);
        let mut stat_mean = Vec::with_capacity(n);
        let mut stat_m2 = Vec::with_capacity(n);
        let mut stat_min = Vec::with_capacity(n);
        let mut stat_max = Vec::with_capacity(n);
        for stats in &self.stats {
            let (count, mean, m2, min, max) = stats.parts();
            stat_count
                .push(u32::try_from(count).map_err(|_| snapshot::err("leaf count exceeds u32"))?);
            stat_mean.push(mean);
            stat_m2.push(m2);
            stat_min.push(min);
            stat_max.push(max);
        }
        Ok(JsonValue::Object(vec![
            (
                "dim".to_string(),
                snapshot::hex_u32s(self.dim.iter().copied()),
            ),
            (
                "threshold".to_string(),
                snapshot::hex_f64s(self.threshold.iter().copied()),
            ),
            (
                "left".to_string(),
                snapshot::hex_u32s(self.left.iter().copied()),
            ),
            (
                "right".to_string(),
                snapshot::hex_u32s(self.right.iter().copied()),
            ),
            (
                "parent".to_string(),
                snapshot::hex_u32s(self.parent.iter().copied()),
            ),
            (
                "depth".to_string(),
                snapshot::hex_u32s(self.depth.iter().copied()),
            ),
            ("stat_count".to_string(), snapshot::hex_u32s(stat_count)),
            ("stat_mean".to_string(), snapshot::hex_f64s(stat_mean)),
            ("stat_m2".to_string(), snapshot::hex_f64s(stat_m2)),
            ("stat_min".to_string(), snapshot::hex_f64s(stat_min)),
            ("stat_max".to_string(), snapshot::hex_f64s(stat_max)),
            (
                "head".to_string(),
                snapshot::hex_u32s(self.head.iter().copied()),
            ),
            (
                "tail".to_string(),
                snapshot::hex_u32s(self.tail.iter().copied()),
            ),
            (
                "next".to_string(),
                snapshot::hex_u32s(self.next.iter().copied()),
            ),
            (
                "free".to_string(),
                snapshot::hex_u32s(self.free.iter().copied()),
            ),
            (
                "depth_bound".to_string(),
                snapshot::num(self.depth_bound as usize),
            ),
            ("n_dims".to_string(), snapshot::num(self.n_dims)),
            (
                "bounds".to_string(),
                snapshot::hex_f64s(self.bounds.iter().copied()),
            ),
        ]))
    }

    /// Rebuilds a tree from [`to_snapshot`](ParticleTree::to_snapshot)
    /// columns, recomputing the flat traversal and the live-leaf moments.
    /// `ctx.table` must cover `max_count` observations; live leaves claiming
    /// more are rejected before the moment refresh could panic.
    pub(crate) fn from_snapshot(
        doc: &JsonValue,
        ctx: &MomentCtx<'_>,
        max_count: usize,
    ) -> crate::Result<Self> {
        let dim = snapshot::get_hex_u32s(doc, "dim")?;
        let n = dim.len();
        if n == 0 {
            return Err(snapshot::err("tree snapshot has no nodes"));
        }
        let threshold = snapshot::get_hex_f64s(doc, "threshold")?;
        let left = snapshot::get_hex_u32s(doc, "left")?;
        let right = snapshot::get_hex_u32s(doc, "right")?;
        let parent = snapshot::get_hex_u32s(doc, "parent")?;
        let depth = snapshot::get_hex_u32s(doc, "depth")?;
        let stat_count = snapshot::get_hex_u32s(doc, "stat_count")?;
        let stat_mean = snapshot::get_hex_f64s(doc, "stat_mean")?;
        let stat_m2 = snapshot::get_hex_f64s(doc, "stat_m2")?;
        let stat_min = snapshot::get_hex_f64s(doc, "stat_min")?;
        let stat_max = snapshot::get_hex_f64s(doc, "stat_max")?;
        let head = snapshot::get_hex_u32s(doc, "head")?;
        let tail = snapshot::get_hex_u32s(doc, "tail")?;
        let next = snapshot::get_hex_u32s(doc, "next")?;
        let free = snapshot::get_hex_u32s(doc, "free")?;
        let depth_bound = snapshot::get_usize(doc, "depth_bound")?;
        let n_dims = snapshot::get_usize(doc, "n_dims")?;
        let bounds = snapshot::get_hex_f64s(doc, "bounds")?;
        for (name, len) in [
            ("threshold", threshold.len()),
            ("left", left.len()),
            ("right", right.len()),
            ("parent", parent.len()),
            ("depth", depth.len()),
            ("stat_count", stat_count.len()),
            ("stat_mean", stat_mean.len()),
            ("stat_m2", stat_m2.len()),
            ("stat_min", stat_min.len()),
            ("stat_max", stat_max.len()),
            ("head", head.len()),
            ("tail", tail.len()),
        ] {
            if len != n {
                return Err(snapshot::err(format!(
                    "field {name}: expected {n} entries, got {len}"
                )));
            }
        }
        if bounds.len() != n * 2 * n_dims {
            return Err(snapshot::err(format!(
                "field bounds: expected {} entries, got {}",
                n * 2 * n_dims,
                bounds.len()
            )));
        }
        let stats: Vec<LeafStats> = (0..n)
            .map(|i| {
                LeafStats::from_parts(
                    stat_count[i] as usize,
                    stat_mean[i],
                    stat_m2[i],
                    stat_min[i],
                    stat_max[i],
                )
            })
            .collect();
        for i in 0..n {
            if dim[i] < FREE_NODE {
                if left[i] as usize >= n || right[i] as usize >= n {
                    return Err(snapshot::err(format!("node {i}: child out of range")));
                }
                if dim[i] as usize >= n_dims {
                    return Err(snapshot::err(format!(
                        "node {i}: split dimension out of range"
                    )));
                }
            }
            if dim[i] == LEAF_NODE && stats[i].count() > max_count {
                return Err(snapshot::err(format!(
                    "leaf {i}: count exceeds the training set"
                )));
            }
        }
        if free.iter().any(|&slot| slot as usize >= n) {
            return Err(snapshot::err("field free: slot out of range"));
        }
        let mut tree = ParticleTree {
            dim,
            threshold,
            left,
            right,
            parent,
            depth,
            stats,
            head,
            tail,
            next,
            free,
            depth_bound: u32::try_from(depth_bound)
                .map_err(|_| snapshot::err("field depth_bound: exceeds u32"))?,
            n_dims,
            bounds,
            flat: Vec::new(),
            moments: Vec::new(),
        };
        tree.moments = (0..n)
            .map(|i| {
                if tree.dim[i] == LEAF_NODE {
                    tree.stats[i].moments(ctx.prior, ctx.table)
                } else {
                    LeafMoments::default()
                }
            })
            .collect();
        tree.refresh_flat();
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_parts() -> (LeafPrior, LnGammaTable) {
        let prior = LeafPrior::weakly_informative(1.5, 0.25);
        let mut table = LnGammaTable::new(&prior);
        table.ensure(64);
        (prior, table)
    }

    fn line_data(n: usize) -> (FeatureMatrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|x| if x[0] <= 0.5 { 1.0 } else { 2.0 })
            .collect();
        (FeatureMatrix::from_rows(&rows).unwrap(), ys)
    }

    fn root(n: usize, xs: &FeatureMatrix, ys: &[f64], ctx: &MomentCtx<'_>) -> ParticleTree {
        let points: Vec<usize> = (0..n).collect();
        ParticleTree::new_root(&points, xs, ys, ctx)
    }

    #[test]
    fn root_leaf_holds_all_points() {
        let (prior, table) = ctx_parts();
        let ctx = MomentCtx {
            prior: &prior,
            table: &table,
        };
        let (xs, ys) = line_data(10);
        let tree = root(10, &xs, &ys, &ctx);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.point_count(), 10);
        assert_eq!(tree.max_depth(), 0);
        assert_eq!(tree.find_leaf(&[0.3]), 0);
        assert_eq!(
            tree.leaf_points(0).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn grow_splits_points_by_threshold() {
        let (prior, table) = ctx_parts();
        let ctx = MomentCtx {
            prior: &prior,
            table: &table,
        };
        let (xs, ys) = line_data(10);
        let mut tree = root(10, &xs, &ys, &ctx);
        let ok = tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
            &ctx,
        );
        assert!(ok);
        assert_eq!(tree.leaf_count(), 2);
        assert_eq!(tree.point_count(), 10);
        let left = tree.find_leaf(&[0.1]);
        let right = tree.find_leaf(&[0.9]);
        assert_ne!(left, right);
        assert!((tree.leaf_stats(left).mean() - 1.0).abs() < 1e-12);
        assert!((tree.leaf_stats(right).mean() - 2.0).abs() < 1e-12);
        assert_eq!(tree.depth_of(left), 1);
        tree.validate_caches(&xs, &ctx).unwrap();
    }

    #[test]
    fn grow_rejects_undersized_children_and_keeps_the_list_intact() {
        let (prior, table) = ctx_parts();
        let ctx = MomentCtx {
            prior: &prior,
            table: &table,
        };
        let (xs, ys) = line_data(10);
        let mut tree = root(10, &xs, &ys, &ctx);
        let ok = tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: -1.0,
            },
            &xs,
            &ys,
            1,
            &ctx,
        );
        assert!(!ok, "all points on one side must be rejected");
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(
            tree.leaf_points(0).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        tree.validate_caches(&xs, &ctx).unwrap();
    }

    #[test]
    fn prune_restores_the_parent_leaf() {
        let (prior, table) = ctx_parts();
        let ctx = MomentCtx {
            prior: &prior,
            table: &table,
        };
        let (xs, ys) = line_data(10);
        let mut tree = root(10, &xs, &ys, &ctx);
        tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
            &ctx,
        );
        let leaf = tree.find_leaf(&[0.1]);
        assert!(tree.prune(leaf, &ctx));
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.point_count(), 10);
        // The merged statistics equal an O(1) merge of the children.
        assert_eq!(tree.leaf_stats(0).count(), 10);
        // Freed slots are reused by the next grow.
        assert!(tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.3
            },
            &xs,
            &ys,
            1,
            &ctx,
        ));
        assert_eq!(tree.leaf_count(), 2);
        assert_eq!(tree.dim.len(), 3, "grow after prune reuses freed slots");
        tree.validate_caches(&xs, &ctx).unwrap();
    }

    #[test]
    fn prune_of_root_is_rejected() {
        let (prior, table) = ctx_parts();
        let ctx = MomentCtx {
            prior: &prior,
            table: &table,
        };
        let (xs, ys) = line_data(4);
        let mut tree = root(4, &xs, &ys, &ctx);
        assert!(!tree.prune(0, &ctx));
    }

    #[test]
    fn insert_updates_the_correct_leaf_and_its_moments() {
        let (prior, table) = ctx_parts();
        let ctx = MomentCtx {
            prior: &prior,
            table: &table,
        };
        let (mut xs, mut ys) = line_data(10);
        let mut tree = root(10, &xs, &ys, &ctx);
        tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
            &ctx,
        );
        // The inserted observation joins the training set like a model
        // update would, so cache validation can re-scan its features.
        xs.push_row(&[0.9]);
        ys.push(2.5);
        let target = tree.find_leaf(&[0.9]);
        let before = tree.leaf_stats(target).count();
        let leaf = tree.insert(&[0.9], 10, 2.5, &ctx);
        assert_eq!(leaf, target);
        assert_eq!(tree.leaf_stats(leaf).count(), before + 1);
        assert_eq!(tree.leaf_points(leaf).last(), Some(10));
        let _ = &ys;
        tree.validate_caches(&xs, &ctx).unwrap();
    }

    #[test]
    fn log_weight_is_higher_for_consistent_observations() {
        let (prior, table) = ctx_parts();
        let ctx = MomentCtx {
            prior: &prior,
            table: &table,
        };
        let (xs, ys) = line_data(20);
        let mut tree = root(20, &xs, &ys, &ctx);
        tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
            &ctx,
        );
        let consistent = tree.log_weight(&[0.2], 1.0);
        let surprising = tree.log_weight(&[0.2], 5.0);
        assert!(consistent > surprising);
    }

    #[test]
    fn sibling_detection() {
        let (prior, table) = ctx_parts();
        let ctx = MomentCtx {
            prior: &prior,
            table: &table,
        };
        let (xs, ys) = line_data(12);
        let mut tree = root(12, &xs, &ys, &ctx);
        tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
            &ctx,
        );
        let left = tree.find_leaf(&[0.0]);
        let right = tree.find_leaf(&[1.0]);
        assert_eq!(tree.leaf_sibling(left), Some(right));
        assert_eq!(tree.leaf_sibling(right), Some(left));
        assert_eq!(tree.parent_of(left), Some(0));
        // After growing the left leaf again, the right leaf's sibling is an
        // internal node, so prune must not be offered there.
        tree.grow(
            left,
            Split {
                dimension: 0,
                threshold: 0.25,
            },
            &xs,
            &ys,
            1,
            &ctx,
        );
        assert_eq!(tree.leaf_sibling(right), None);
    }

    #[test]
    fn leaves_iterator_matches_leaf_count() {
        let (prior, table) = ctx_parts();
        let ctx = MomentCtx {
            prior: &prior,
            table: &table,
        };
        let (xs, ys) = line_data(16);
        let mut tree = root(16, &xs, &ys, &ctx);
        tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
            &ctx,
        );
        let l = tree.find_leaf(&[0.2]);
        tree.grow(
            l,
            Split {
                dimension: 0,
                threshold: 0.25,
            },
            &xs,
            &ys,
            1,
            &ctx,
        );
        assert_eq!(tree.leaves().count(), tree.leaf_count());
        assert_eq!(tree.leaf_count(), 3);
    }

    #[test]
    fn cached_flat_traversal_matches_find_leaf_after_moves() {
        let (prior, table) = ctx_parts();
        let ctx = MomentCtx {
            prior: &prior,
            table: &table,
        };
        let (xs, ys) = line_data(16);
        let mut tree = root(16, &xs, &ys, &ctx);
        tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
            &ctx,
        );
        let l = tree.find_leaf(&[0.2]);
        tree.grow(
            l,
            Split {
                dimension: 0,
                threshold: 0.25,
            },
            &xs,
            &ys,
            1,
            &ctx,
        );
        // Pruning leaves a free slot behind, which the flattening must
        // encode harmlessly.
        let r = tree.find_leaf(&[0.05]);
        tree.prune(r, &ctx);
        let mut fresh = Vec::new();
        tree.flatten_into(&mut fresh);
        assert_eq!(fresh, tree.flat_nodes());
        for i in 0..32 {
            let x = [i as f64 / 31.0];
            let by_cache = find_leaf_flat(tree.flat_nodes(), &x);
            let by_fresh = find_leaf_flat(&fresh, &x);
            assert_eq!(by_cache, by_fresh);
            assert!(tree.dim[by_cache] == LEAF_NODE);
        }
        tree.validate_caches(&xs, &ctx).unwrap();
    }

    #[test]
    fn clone_from_reuses_storage_and_matches_clone() {
        let (prior, table) = ctx_parts();
        let ctx = MomentCtx {
            prior: &prior,
            table: &table,
        };
        let (xs, ys) = line_data(12);
        let mut tree = root(12, &xs, &ys, &ctx);
        tree.grow(
            0,
            Split {
                dimension: 0,
                threshold: 0.5,
            },
            &xs,
            &ys,
            1,
            &ctx,
        );
        let mut target = ParticleTree::placeholder();
        target.clone_from(&tree);
        assert_eq!(target, tree.clone());
        target.validate_caches(&xs, &ctx).unwrap();
    }

    #[test]
    fn block_traversal_matches_serial_traversal() {
        let (prior, table) = ctx_parts();
        let ctx = MomentCtx {
            prior: &prior,
            table: &table,
        };
        let (xs, ys) = line_data(64);
        let mut tree = root(64, &xs, &ys, &ctx);
        // Grow an unbalanced three-level tree so lanes finish at different
        // depths (the interesting case for the pending-word bookkeeping).
        for (leaf, threshold) in [(0usize, 0.5), (1, 0.25), (3, 0.125)] {
            tree.grow(
                leaf,
                Split {
                    dimension: 0,
                    threshold,
                },
                &xs,
                &ys,
                1,
                &ctx,
            );
        }
        let queries: Vec<Vec<f64>> = (0..130).map(|i| vec![i as f64 / 129.0]).collect();
        let views: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
        let flat = tree.flat_nodes();
        // Cover partial, full and odd-sized blocks, including size 64 (both
        // the sparse set-bit compare and the dense full-width mask build).
        for chunk in [1usize, 3, 63, 64].iter().flat_map(|&s| views.chunks(s)) {
            let mut leaf_of = [0u32; 64];
            let mut staged = QueryBlock::default();
            staged.fill(1, chunk);
            let mut stack = Vec::new();
            find_leaves_flat_block(flat, &staged, &mut leaf_of, &mut stack);
            for (i, q) in chunk.iter().enumerate() {
                assert_eq!(
                    leaf_of[i] as usize,
                    find_leaf_flat(flat, q),
                    "query {q:?} in a {}-row block",
                    chunk.len()
                );
            }
        }
    }
}
