//! Dynamic trees via particle learning (Taddy, Gramacy & Polson).
//!
//! The dynamic tree is the surrogate model at the heart of the paper's
//! active learner (§3.2). It maintains a *set of particles*, each holding one
//! regression tree. When a new observation `(x, y)` arrives:
//!
//! 1. every particle is weighted by the posterior-predictive density of `y`
//!    at the leaf containing `x`,
//! 2. particles are resampled in proportion to those weights,
//! 3. each surviving particle stochastically applies one of the three moves
//!    of Figure 4 — **stay**, **grow** (split the leaf that received the new
//!    point) or **prune** (collapse the leaf's parent) — with probabilities
//!    proportional to the Bayesian-CART posterior of the resulting tree.
//!
//! Predictions average the per-particle Student-t posterior predictives, so
//! both a mean and a variance are available at any point of the space — the
//! ingredients the ALM/ALC acquisition criteria need (§3.3).
//!
//! # Performance
//!
//! This module implements the zero-copy batched pipeline the active-learning
//! loop runs on:
//!
//! * Training inputs live in a flat row-major [`FeatureMatrix`] instead of
//!   one heap allocation per observation.
//! * [`update`](SurrogateModel::update) is allocation-free on the common
//!   path: resampling *moves* uniquely surviving particles and clones only
//!   genuine duplicates, and the weight/resampling workspace is reused
//!   across updates.
//! * The batch entry points ([`predict_batch`](SurrogateModel::predict_batch),
//!   [`alm_scores`](ActiveSurrogate::alm_scores),
//!   [`alc_scores`](ActiveSurrogate::alc_scores)) flatten every particle's
//!   tree into a dense traversal array once per call, precompute per-leaf
//!   contribution tables shared by all candidates, and score candidate
//!   blocks in parallel with deterministic by-index write-back — results are
//!   bit-identical to the single-point methods regardless of thread count.

pub mod tree;

use rand::Rng;
use serde::{Deserialize, Serialize};

use alic_stats::rng::{seeded_stream, Rng as StatsRng};
use alic_stats::FeatureMatrix;
use rayon::prelude::*;

use crate::leaf::{LeafPrior, LeafStats};
use crate::traits::{ActiveSurrogate, Prediction, SurrogateModel};
use crate::{validate_training_set, ModelError, Result};

pub use tree::{find_leaf_flat, FlatNode, ParticleTree, Split, FLAT_LEAF};

/// Candidates per parallel scoring block. Each block accumulates its scores
/// independently (per-candidate work is ordered by particle index), so the
/// block size affects only scheduling granularity, never results.
const SCORE_BLOCK: usize = 64;

/// Configuration of the dynamic-tree model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynaTreeConfig {
    /// Number of particles. The paper sets the R `dynaTree` package to 5,000
    /// particles; a few hundred are sufficient for the simulated workloads
    /// and keep the experiment harness fast.
    pub particles: usize,
    /// Base of the Chipman–George–McCulloch split prior
    /// `p_split(depth) = alpha (1 + depth)^(-beta)`.
    pub alpha: f64,
    /// Decay exponent of the split prior.
    pub beta: f64,
    /// Minimum number of observations in each child of a split.
    pub min_leaf: usize,
    /// Number of random split proposals considered per grow move.
    pub grow_attempts: usize,
    /// Seed for the model's internal randomness (resampling and moves).
    pub seed: u64,
}

impl Default for DynaTreeConfig {
    fn default() -> Self {
        DynaTreeConfig {
            particles: 200,
            alpha: 0.95,
            beta: 2.0,
            min_leaf: 2,
            grow_attempts: 4,
            seed: 0,
        }
    }
}

/// Reusable per-update workspace: after the first update no buffer here is
/// ever reallocated, which keeps the particle-learning step allocation-free
/// on the common path.
#[derive(Debug, Clone, Default)]
struct UpdateScratch {
    /// Per-particle log predictive densities of the new observation.
    log_weights: Vec<f64>,
    /// Normalized (shifted, exponentiated) weights.
    weights: Vec<f64>,
    /// Systematic-resampling ancestor indices.
    indices: Vec<usize>,
    /// Multiplicity of each ancestor in `indices`.
    counts: Vec<u32>,
    /// Staging slots used to move surviving particles into their new order.
    slots: Vec<Option<ParticleTree>>,
}

/// Particle-learning dynamic-tree regressor.
///
/// See the [module documentation](self) for the algorithm and the crate
/// documentation for a usage example.
#[derive(Debug, Clone)]
pub struct DynaTree {
    config: DynaTreeConfig,
    prior: LeafPrior,
    /// Flat row-major training inputs. The placeholder width used before
    /// [`fit`](SurrogateModel::fit) is never read (`dimension` is `None`).
    xs: FeatureMatrix,
    ys: Vec<f64>,
    particles: Vec<ParticleTree>,
    rng: StatsRng,
    dimension: Option<usize>,
    scratch: UpdateScratch,
}

impl DynaTree {
    /// Creates an unfitted model with the given configuration.
    pub fn new(config: DynaTreeConfig) -> Self {
        DynaTree {
            config,
            prior: LeafPrior::default(),
            xs: FeatureMatrix::new(1),
            ys: Vec::new(),
            particles: Vec::new(),
            rng: seeded_stream(config.seed, 0xD14A),
            dimension: None,
            scratch: UpdateScratch::default(),
        }
    }

    /// Creates an unfitted model with default configuration and the given
    /// seed.
    pub fn with_seed(seed: u64) -> Self {
        DynaTree::new(DynaTreeConfig {
            seed,
            ..Default::default()
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &DynaTreeConfig {
        &self.config
    }

    /// The shared leaf prior (derived from the initial training targets).
    pub fn prior(&self) -> &LeafPrior {
        &self.prior
    }

    /// Average number of leaves across particles (a measure of model
    /// complexity).
    pub fn mean_leaf_count(&self) -> f64 {
        if self.particles.is_empty() {
            return 0.0;
        }
        self.particles
            .iter()
            .map(|p| p.leaf_count() as f64)
            .sum::<f64>()
            / self.particles.len() as f64
    }

    fn p_split(&self, depth: usize) -> f64 {
        (self.config.alpha * (1.0 + depth as f64).powf(-self.config.beta)).clamp(1e-9, 1.0 - 1e-9)
    }

    fn check_dimension(&self, x: &[f64]) -> Result<()> {
        match self.dimension {
            None => Err(ModelError::NotFitted),
            Some(d) if d == x.len() => Ok(()),
            Some(d) => Err(ModelError::DimensionMismatch {
                expected: d,
                actual: x.len(),
            }),
        }
    }

    /// Proposes a random split of `leaf` in `particle`, returning the split
    /// together with the log marginal likelihood of the resulting children.
    fn propose_split(&mut self, particle: &ParticleTree, leaf: usize) -> Option<(Split, f64)> {
        let points = particle.leaf_points(leaf);
        if points.len() < 2 * self.config.min_leaf {
            return None;
        }
        let dim = self.dimension?;
        let mut best: Option<(Split, f64)> = None;
        for _ in 0..self.config.grow_attempts {
            let d = self.rng.gen_range(0..dim);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &p in points {
                let v = self.xs.get(p, d);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi <= lo {
                continue;
            }
            let threshold = self.rng.gen_range(lo..hi);
            // Single pass: partition counts and child sufficient statistics
            // together, without materializing the index or target vectors.
            let mut left_stats = LeafStats::new();
            let mut right_stats = LeafStats::new();
            for &p in points {
                if self.xs.get(p, d) <= threshold {
                    left_stats.push(self.ys[p]);
                } else {
                    right_stats.push(self.ys[p]);
                }
            }
            if left_stats.count() < self.config.min_leaf
                || right_stats.count() < self.config.min_leaf
            {
                continue;
            }
            let lml = left_stats.log_marginal_likelihood(&self.prior)
                + right_stats.log_marginal_likelihood(&self.prior);
            let split = Split {
                dimension: d,
                threshold,
            };
            if best.as_ref().is_none_or(|(_, b)| lml > *b) {
                best = Some((split, lml));
            }
        }
        best
    }

    /// Applies one stochastic stay/prune/grow move to `particle` around the
    /// leaf that just received a new observation.
    fn apply_move(&mut self, particle: &mut ParticleTree, leaf: usize) {
        let depth = particle.depth_of(leaf);
        let leaf_lml = particle
            .leaf_stats(leaf)
            .log_marginal_likelihood(&self.prior);

        // Log-odds of the candidate moves relative to "stay" (whose log-odds
        // are zero by construction). At most three moves exist, so the
        // candidate list lives on the stack.
        let mut moves = [(MoveKind::Stay, 0.0); 3];
        let mut n_moves = 1;

        if let Some((split, children_lml)) = self.propose_split(particle, leaf) {
            let p_here = self.p_split(depth);
            let p_child = self.p_split(depth + 1);
            let log_odds = children_lml - leaf_lml + p_here.ln() + 2.0 * (1.0 - p_child).ln()
                - (1.0 - p_here).ln();
            moves[n_moves] = (MoveKind::Grow(split), log_odds);
            n_moves += 1;
        }

        if let Some(sibling) = particle.leaf_sibling(leaf) {
            let sibling_lml = particle
                .leaf_stats(sibling)
                .log_marginal_likelihood(&self.prior);
            let mut merged = *particle.leaf_stats(leaf);
            merged.merge(particle.leaf_stats(sibling));
            let merged_lml = merged.log_marginal_likelihood(&self.prior);
            let parent_depth = depth.saturating_sub(1);
            let p_parent = self.p_split(parent_depth);
            let p_here = self.p_split(depth);
            let log_odds = merged_lml + (1.0 - p_parent).ln()
                - (leaf_lml + sibling_lml + p_parent.ln() + 2.0 * (1.0 - p_here).ln());
            moves[n_moves] = (MoveKind::Prune, log_odds);
            n_moves += 1;
        }

        // Sample a move with probability proportional to exp(log-odds).
        let moves = &moves[..n_moves];
        let max = moves
            .iter()
            .map(|(_, w)| *w)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut weights = [0.0f64; 3];
        for (w, (_, log_odds)) in weights.iter_mut().zip(moves) {
            *w = (log_odds - max).exp();
        }
        let weights = &weights[..n_moves];
        let total: f64 = weights.iter().sum();
        let mut pick = self.rng.gen_range(0.0..total);
        let mut chosen = MoveKind::Stay;
        for (&(kind, _), &w) in moves.iter().zip(weights) {
            if pick < w {
                chosen = kind;
                break;
            }
            pick -= w;
        }

        match chosen {
            MoveKind::Stay => {}
            MoveKind::Grow(split) => {
                particle.grow(leaf, split, &self.xs, &self.ys, self.config.min_leaf);
            }
            MoveKind::Prune => {
                particle.prune(leaf, &self.ys);
            }
        }
    }

    fn update_inner(&mut self, x: &[f64], y: f64) {
        let index = self.ys.len();
        self.xs.push_row(x);
        self.ys.push(y);

        let mut scratch = std::mem::take(&mut self.scratch);

        // 1. Weight particles by the predictive density of the new target.
        scratch.log_weights.clear();
        scratch.log_weights.extend(
            self.particles
                .iter()
                .map(|p| p.log_weight(x, y, &self.prior)),
        );

        // 2. Resample. Uniquely surviving particles are *moved* into their
        //    new slots; only genuine duplicates are deep-cloned. Systematic
        //    resampling yields non-decreasing ancestor indices, so when every
        //    particle survives exactly once the assignment is the identity
        //    and the particle vector is left untouched.
        systematic_resample(
            &mut self.rng,
            &scratch.log_weights,
            &mut scratch.weights,
            &mut scratch.indices,
        );
        scratch.counts.clear();
        scratch.counts.resize(self.particles.len(), 0);
        for &i in &scratch.indices {
            scratch.counts[i] += 1;
        }
        if scratch.counts.iter().any(|&c| c != 1) {
            scratch.slots.clear();
            scratch.slots.extend(self.particles.drain(..).map(Some));
            for &i in &scratch.indices {
                scratch.counts[i] -= 1;
                let particle = if scratch.counts[i] == 0 {
                    scratch.slots[i]
                        .take()
                        .expect("the last use of an ancestor moves it")
                } else {
                    scratch.slots[i]
                        .as_ref()
                        .expect("an ancestor slot stays live until its last use")
                        .clone()
                };
                self.particles.push(particle);
            }
            // Drop the particles the resampling eliminated.
            scratch.slots.clear();
        }

        // 3. Propagate: insert the point and apply one structural move.
        for slot in 0..self.particles.len() {
            let mut particle =
                std::mem::replace(&mut self.particles[slot], ParticleTree::placeholder());
            let leaf = particle.insert(x, index, y);
            self.apply_move(&mut particle, leaf);
            self.particles[slot] = particle;
        }

        self.scratch = scratch;
    }

    /// Per-particle `(flat tree, per-leaf payload)` tables for one batch
    /// call. `payload` receives the particle, its flattened nodes and a
    /// zero-initialized per-node table to fill.
    fn particle_tables<T: Clone + Default + Send>(
        &self,
        payload: impl Fn(&ParticleTree, &[FlatNode], &mut Vec<T>) + Sync,
    ) -> Vec<(Vec<FlatNode>, Vec<T>)> {
        self.particles
            .par_iter()
            .map(|particle| {
                let mut flat = Vec::new();
                particle.flatten_into(&mut flat);
                let mut table = vec![T::default(); flat.len()];
                payload(particle, &flat, &mut table);
                (flat, table)
            })
            .collect()
    }
}

/// Systematic resampling of particle indices proportionally to the given log
/// weights, written into `indices` (the identity assignment when the weights
/// are degenerate). `weights` is a reusable workspace.
fn systematic_resample(
    rng: &mut StatsRng,
    log_weights: &[f64],
    weights: &mut Vec<f64>,
    indices: &mut Vec<usize>,
) {
    let n = log_weights.len();
    let max = log_weights
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    weights.clear();
    weights.extend(log_weights.iter().map(|w| (w - max).exp()));
    let total: f64 = weights.iter().sum();
    indices.clear();
    if !(total.is_finite()) || total <= 0.0 {
        indices.extend(0..n);
        return;
    }
    let step = total / n as f64;
    let start: f64 = rng.gen_range(0.0..step);
    let mut cumulative = weights[0];
    let mut j = 0;
    for i in 0..n {
        let target = start + i as f64 * step;
        while cumulative < target && j + 1 < n {
            j += 1;
            cumulative += weights[j];
        }
        indices.push(j);
    }
}

#[derive(Debug, Clone, Copy)]
enum MoveKind {
    Stay,
    Grow(Split),
    Prune,
}

impl SurrogateModel for DynaTree {
    fn fit(&mut self, xs: &[&[f64]], ys: &[f64]) -> Result<()> {
        let dim = validate_training_set(xs, ys)?;
        self.dimension = Some(dim);
        self.xs = FeatureMatrix::with_capacity(dim, xs.len());
        self.ys.clear();
        // Leaf prior derived from the initial targets: centre on their mean,
        // expect within-leaf variance to be a fraction of the overall spread.
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let variance = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / ys.len() as f64;
        self.prior = LeafPrior::weakly_informative(mean, (0.25 * variance).max(1e-10));

        // Start every particle as a root leaf holding the first observation,
        // then stream the remaining observations through the standard
        // particle-learning update.
        self.xs.push_row(xs[0]);
        self.ys.push(ys[0]);
        self.particles = (0..self.config.particles)
            .map(|_| ParticleTree::new_root(vec![0], &self.ys))
            .collect();
        for (x, &y) in xs.iter().zip(ys).skip(1) {
            self.update_inner(x, y);
        }
        Ok(())
    }

    fn update(&mut self, x: &[f64], y: f64) -> Result<()> {
        self.check_dimension(x)?;
        if !y.is_finite() || x.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::NonFiniteInput);
        }
        self.update_inner(x, y);
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<Prediction> {
        self.check_dimension(x)?;
        if self.particles.is_empty() {
            return Err(ModelError::NotFitted);
        }
        let mut mean_acc = 0.0;
        let mut second_moment = 0.0;
        for particle in &self.particles {
            let leaf = particle.find_leaf(x);
            let (m, v) = particle
                .leaf_stats(leaf)
                .predictive_mean_variance(&self.prior);
            mean_acc += m;
            second_moment += v + m * m;
        }
        let n = self.particles.len() as f64;
        let mean = mean_acc / n;
        let variance = (second_moment / n - mean * mean).max(0.0);
        Ok(Prediction::new(mean, variance))
    }

    fn predict_batch(&self, inputs: &[&[f64]]) -> Result<Vec<Prediction>> {
        for x in inputs {
            self.check_dimension(x)?;
        }
        if self.particles.is_empty() {
            return Err(ModelError::NotFitted);
        }
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        // Per-particle flat traversal trees and per-leaf Student-t moments,
        // computed once and shared by every input row.
        let tables = self.particle_tables(|particle, _, moments: &mut Vec<(f64, f64)>| {
            for leaf in particle.leaves() {
                moments[leaf] = particle
                    .leaf_stats(leaf)
                    .predictive_mean_variance(&self.prior);
            }
        });
        let n = self.particles.len() as f64;
        let blocks: Vec<&[&[f64]]> = inputs.chunks(SCORE_BLOCK).collect();
        let scored: Vec<Vec<Prediction>> = blocks
            .into_par_iter()
            .map(|block| {
                // Accumulate over particles in index order, exactly like
                // `predict`, so results are bit-identical to the single-point
                // method and independent of the thread count.
                let mut mean_acc = vec![0.0f64; block.len()];
                let mut second_moment = vec![0.0f64; block.len()];
                for (flat, moments) in &tables {
                    for (i, x) in block.iter().enumerate() {
                        let (m, v) = moments[find_leaf_flat(flat, x)];
                        mean_acc[i] += m;
                        second_moment[i] += v + m * m;
                    }
                }
                mean_acc
                    .iter()
                    .zip(&second_moment)
                    .map(|(&acc, &sm)| {
                        let mean = acc / n;
                        let variance = (sm / n - mean * mean).max(0.0);
                        Prediction::new(mean, variance)
                    })
                    .collect()
            })
            .collect();
        Ok(scored.into_iter().flatten().collect())
    }

    fn observation_count(&self) -> usize {
        self.ys.len()
    }

    fn dimension(&self) -> Option<usize> {
        self.dimension
    }
}

impl ActiveSurrogate for DynaTree {
    fn alc_score(&self, candidate: &[f64], reference: &[&[f64]]) -> Result<f64> {
        Ok(self.alc_scores(&[candidate], reference)?[0])
    }

    fn alc_scores(&self, candidates: &[&[f64]], reference: &[&[f64]]) -> Result<Vec<f64>> {
        if self.particles.is_empty() {
            return Err(ModelError::NotFitted);
        }
        for c in candidates {
            self.check_dimension(c)?;
        }
        for r in reference {
            self.check_dimension(r)?;
        }
        // With no reference set there is nothing to average over; fall back
        // to the ALM criterion so the scores still order candidates usefully.
        if reference.is_empty() {
            return self.alm_scores(candidates);
        }
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        // Pre-compute, per particle, each leaf's contribution to a candidate
        // landing in it. Observing a candidate shrinks the predictive
        // variance of its leaf by roughly a factor 1/(n_eff + 1), so the
        // expected reduction in *average* variance over the reference set is
        // (sum of the leaf's reference variance) / (n_eff + 1), averaged over
        // particles. Leaves containing no reference mass contribute nothing —
        // exactly like Cohn's criterion, which integrates the reduction over
        // the input distribution. The reference traversals and the division
        // are shared across all candidates; the per-candidate work is one
        // flat-tree traversal and one table add per particle.
        let tables = self.particle_tables(|particle, flat, add: &mut Vec<f64>| {
            for r in reference {
                let leaf = find_leaf_flat(flat, r);
                let (_, v) = particle
                    .leaf_stats(leaf)
                    .predictive_mean_variance(&self.prior);
                add[leaf] += v;
            }
            for (leaf, affected) in add.iter_mut().enumerate() {
                if *affected > 0.0 {
                    let n_eff = particle.leaf_stats(leaf).count() as f64 + self.prior.kappa;
                    *affected /= n_eff + 1.0;
                }
            }
        });
        let denominator = reference.len() as f64 * self.particles.len() as f64;
        let blocks: Vec<&[&[f64]]> = candidates.chunks(SCORE_BLOCK).collect();
        let scored: Vec<Vec<f64>> = blocks
            .into_par_iter()
            .map(|block| {
                let mut totals = vec![0.0f64; block.len()];
                for (flat, add) in &tables {
                    for (total, candidate) in totals.iter_mut().zip(block) {
                        *total += add[find_leaf_flat(flat, candidate)];
                    }
                }
                totals.iter().map(|t| t / denominator).collect()
            })
            .collect();
        Ok(scored.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_on(f: impl Fn(f64) -> f64, n: usize, seed: u64) -> DynaTree {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| f(x[0])).collect();
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: 80,
            seed,
            ..Default::default()
        });
        model.fit(&crate::row_views(&xs), &ys).unwrap();
        model
    }

    fn views(rows: &[Vec<f64>]) -> Vec<&[f64]> {
        rows.iter().map(Vec::as_slice).collect()
    }

    #[test]
    fn learns_a_step_function() {
        let model = fit_on(|x| if x <= 0.5 { 1.0 } else { 3.0 }, 60, 1);
        let low = model.predict(&[0.2]).unwrap();
        let high = model.predict(&[0.8]).unwrap();
        assert!((low.mean - 1.0).abs() < 0.4, "low mean {}", low.mean);
        assert!((high.mean - 3.0).abs() < 0.4, "high mean {}", high.mean);
        assert!(model.mean_leaf_count() > 1.0, "trees should have grown");
    }

    #[test]
    fn learns_a_smooth_trend() {
        let model = fit_on(|x| 2.0 + x, 80, 2);
        let a = model.predict(&[0.1]).unwrap().mean;
        let b = model.predict(&[0.9]).unwrap().mean;
        assert!(
            b > a + 0.3,
            "prediction should increase along the trend: {a} vs {b}"
        );
    }

    #[test]
    fn incremental_updates_track_new_information() {
        let mut model = fit_on(|_| 1.0, 30, 3);
        // Feed contradicting data on the right half of the space.
        for i in 0..60 {
            let x = 0.75 + 0.25 * (i % 10) as f64 / 10.0;
            model.update(&[x], 4.0).unwrap();
        }
        let right = model.predict(&[0.9]).unwrap().mean;
        let left = model.predict(&[0.1]).unwrap().mean;
        assert!(right > 2.5, "right half should have adapted, got {right}");
        assert!(left < 2.5, "left half should still be near 1.0, got {left}");
    }

    #[test]
    fn predictions_are_deterministic_for_a_seed() {
        let a = fit_on(|x| x * x, 40, 7);
        let b = fit_on(|x| x * x, 40, 7);
        assert_eq!(a.predict(&[0.3]).unwrap(), b.predict(&[0.3]).unwrap());
    }

    #[test]
    fn variance_is_higher_away_from_data() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 100.0]).collect(); // data in [0, 0.4]
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: 80,
            seed: 5,
            ..Default::default()
        });
        model.fit(&crate::row_views(&xs), &ys).unwrap();
        let inside = model.predict(&[0.2]).unwrap().variance;
        let outside = model.predict(&[0.95]).unwrap().variance;
        assert!(
            outside >= inside * 0.5,
            "extrapolation should not be overconfident: inside {inside}, outside {outside}"
        );
    }

    #[test]
    fn noisy_region_gets_higher_predictive_variance() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..120 {
            let x = i as f64 / 119.0;
            xs.push(vec![x]);
            if x <= 0.5 {
                ys.push(1.0 + 0.002 * (i % 5) as f64);
            } else {
                ys.push(3.0 + ((i % 9) as f64 - 4.0) * 0.4);
            }
        }
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: 100,
            seed: 11,
            ..Default::default()
        });
        model.fit(&crate::row_views(&xs), &ys).unwrap();
        let quiet = model.predict(&[0.25]).unwrap().variance;
        let noisy = model.predict(&[0.75]).unwrap().variance;
        assert!(noisy > quiet, "noisy {noisy} should exceed quiet {quiet}");
    }

    #[test]
    fn alm_and_alc_scores_are_finite_and_nonnegative() {
        let model = fit_on(|x| (6.0 * x).sin(), 50, 13);
        let reference: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let reference = views(&reference);
        for c in [0.05, 0.37, 0.77] {
            let alm = model.alm_score(&[c]).unwrap();
            let alc = model.alc_score(&[c], &reference).unwrap();
            assert!(alm.is_finite() && alm >= 0.0);
            assert!(alc.is_finite() && alc >= 0.0);
        }
    }

    #[test]
    fn alc_prefers_the_noisy_sparse_region() {
        // Dense quiet data on the left, sparse noisy data on the right.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..80 {
            let x = 0.5 * i as f64 / 79.0;
            xs.push(vec![x]);
            ys.push(1.0);
        }
        for i in 0..6 {
            let x = 0.6 + 0.4 * i as f64 / 5.0;
            xs.push(vec![x]);
            ys.push(2.0 + if i % 2 == 0 { 0.8 } else { -0.8 });
        }
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: 100,
            seed: 17,
            ..Default::default()
        });
        model.fit(&crate::row_views(&xs), &ys).unwrap();
        let reference: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
        let scores = model
            .alc_scores(&[&[0.25], &[0.8]], &views(&reference))
            .unwrap();
        assert!(
            scores[1] > scores[0],
            "noisy sparse region should be more informative: {scores:?}"
        );
    }

    #[test]
    fn batch_and_single_alc_agree() {
        let model = fit_on(|x| x, 30, 19);
        let reference: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let reference = views(&reference);
        let batch = model.alc_scores(&[&[0.3], &[0.6]], &reference).unwrap();
        let single0 = model.alc_score(&[0.3], &reference).unwrap();
        let single1 = model.alc_score(&[0.6], &reference).unwrap();
        assert!((batch[0] - single0).abs() < 1e-12);
        assert!((batch[1] - single1).abs() < 1e-12);
    }

    #[test]
    fn predict_batch_is_bit_identical_to_predict() {
        let model = fit_on(|x| (3.0 * x).cos(), 70, 29);
        let points: Vec<Vec<f64>> = (0..150).map(|i| vec![i as f64 / 149.0]).collect();
        let batch = model.predict_batch(&views(&points)).unwrap();
        for (x, p) in points.iter().zip(&batch) {
            assert_eq!(*p, model.predict(x).unwrap());
        }
    }

    #[test]
    fn batch_scores_are_independent_of_the_thread_count() {
        let model = fit_on(|x| (5.0 * x).sin(), 60, 31);
        let candidates: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 199.0]).collect();
        let reference: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let parallel_alc = model
            .alc_scores(&views(&candidates), &views(&reference))
            .unwrap();
        let parallel_alm = model.alm_scores(&views(&candidates)).unwrap();
        rayon::set_num_threads(1);
        let serial_alc = model
            .alc_scores(&views(&candidates), &views(&reference))
            .unwrap();
        let serial_alm = model.alm_scores(&views(&candidates)).unwrap();
        rayon::set_num_threads(0);
        assert_eq!(parallel_alc, serial_alc);
        assert_eq!(parallel_alm, serial_alm);
    }

    #[test]
    fn errors_before_fit_and_on_bad_input() {
        let mut model = DynaTree::with_seed(0);
        assert_eq!(model.predict(&[0.0]).unwrap_err(), ModelError::NotFitted);
        assert_eq!(
            model.update(&[0.0], 1.0).unwrap_err(),
            ModelError::NotFitted
        );
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![0.0, 1.0, 2.0];
        model.fit(&crate::row_views(&xs), &ys).unwrap();
        assert!(matches!(
            model.predict(&[0.0, 1.0]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            model.predict_batch(&[&[0.0], &[0.0, 1.0]]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            model.alc_scores(&[&[0.0]], &[&[0.0, 1.0]]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert_eq!(
            model.update(&[f64::NAN], 1.0).unwrap_err(),
            ModelError::NonFiniteInput
        );
    }

    #[test]
    fn observation_count_tracks_fit_and_updates() {
        let mut model = fit_on(|x| x, 25, 23);
        assert_eq!(model.observation_count(), 25);
        model.update(&[0.5], 0.5).unwrap();
        assert_eq!(model.observation_count(), 26);
        assert_eq!(model.dimension(), Some(1));
    }

    #[test]
    fn two_dimensional_structure_is_recovered() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let a = i as f64 / 11.0;
                let b = j as f64 / 11.0;
                xs.push(vec![a, b]);
                ys.push(if a > 0.5 && b > 0.5 { 5.0 } else { 1.0 });
            }
        }
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: 100,
            seed: 29,
            ..Default::default()
        });
        model.fit(&crate::row_views(&xs), &ys).unwrap();
        assert!(model.predict(&[0.9, 0.9]).unwrap().mean > 3.0);
        assert!(model.predict(&[0.1, 0.1]).unwrap().mean < 2.5);
    }
}
