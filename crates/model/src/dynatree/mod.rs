//! Dynamic trees via particle learning (Taddy, Gramacy & Polson).
//!
//! The dynamic tree is the surrogate model at the heart of the paper's
//! active learner (§3.2). It maintains a *set of particles*, each holding one
//! regression tree. When a new observation `(x, y)` arrives:
//!
//! 1. every particle is weighted by the posterior-predictive density of `y`
//!    at the leaf containing `x`,
//! 2. particles are resampled in proportion to those weights,
//! 3. each surviving particle stochastically applies one of the three moves
//!    of Figure 4 — **stay**, **grow** (split the leaf that received the new
//!    point) or **prune** (collapse the leaf's parent) — with probabilities
//!    proportional to the Bayesian-CART posterior of the resulting tree.
//!
//! Predictions average the per-particle Student-t posterior predictives, so
//! both a mean and a variance are available at any point of the space — the
//! ingredients the ALM/ALC acquisition criteria need (§3.3).
//!
//! # Performance
//!
//! The particle-learning step is built around three ideas:
//!
//! * **Structurally shared arenas.** Trees live in a slot pool of
//!   arena-backed [`ParticleTree`]s ([`tree`] module) and particles hold
//!   slot indices. Systematic-resampling duplicates *share* their ancestor's
//!   arena: the per-update weighting, point insertion and leaf gathering
//!   run **once per unique tree**, and a duplicate only pays for a copy (a
//!   handful of `memcpy`s into a recycled slot) when its first divergent
//!   grow/prune move lands. Stay moves — the common case — keep sharing.
//! * **Deterministic parallel updates.** Each particle's stochastic move is
//!   decided with an RNG stream derived from
//!   `(model seed, observation index, particle index)`
//!   ([`seeded_substream`]), so the weight pass, the per-arena insert pass
//!   and the per-particle move decisions all run on the rayon pool with
//!   by-index write-back — `fit` and `update` are bit-identical across
//!   thread counts. Only systematic resampling (one draw from the master
//!   stream) and the copy-on-write slot assignment are serial passes.
//! * **Persistent flat-node and leaf-moment caches.** Every arena keeps its
//!   dense traversal array and per-leaf derived quantities (predictive
//!   moments, log marginal likelihood, log-density constants backed by a
//!   memoized `ln Γ` table) eagerly fresh, so weighting is a flat traversal
//!   plus a few flops, move scoring reads cached likelihoods, and
//!   steady-state `predict`/`predict_batch`/`alc_scores` calls do **zero**
//!   flattening or posterior recomputation.
//! * **Word-at-a-time split scans.** Each update gathers the receiving
//!   leaf once into column-major feature/target buffers; every sharer's
//!   split-proposal batch then runs through the [`scan`] kernels — u64
//!   comparison-mask words, `popcnt` left counts and set-bit-ordered sums —
//!   which are bit-identical to the scalar mask-multiply reference by
//!   construction (property-tested), so the kernel choice is purely a
//!   speed knob.
//!
//! The batch entry points ([`predict_batch`](SurrogateModel::predict_batch),
//! [`alm_scores`](ActiveSurrogate::alm_scores),
//! [`alc_scores`](ActiveSurrogate::alc_scores)) chunk candidates directly by
//! index (no per-call block collection), share per-leaf contribution tables
//! across candidates, traverse each **unique** tree once per candidate and
//! accumulate multiplicity-weighted contributions in first-seen particle
//! order — results are bit-identical to the single-point methods regardless
//! of the thread count.

pub mod scan;
pub mod tree;

use rand::Rng;
use serde::{Deserialize, Serialize};

use alic_data::io::JsonValue;
use alic_stats::rng::{seeded_stream, Rng as StatsRng, SmallRng};
use alic_stats::FeatureMatrix;
use rayon::prelude::*;

use crate::leaf::{log_marginal_likelihood_of_sums, LeafPrior, LnGammaTable};
use crate::snapshot::{self, Snapshot};
use crate::traits::{ActiveSurrogate, Prediction, SurrogateModel};
use crate::{validate_training_set, ModelError, Result};

use scan::{LeafColumns, ATTEMPT_BATCH, DEFAULT_SCAN_KIND};

pub use tree::{
    find_leaf_flat, find_leaves_flat_block, for_each_block_leaf, FlatNode, MomentCtx, ParticleTree,
    QueryBlock, Split, FLAT_LEAF,
};

/// Candidates per parallel scoring block. Each block accumulates its scores
/// independently (per-candidate work is ordered by particle index), so the
/// block size affects only scheduling granularity, never results.
const SCORE_BLOCK: usize = 64;

/// "No group" sentinel in the arena→group scratch map.
const NO_GROUP: u32 = u32::MAX;

/// Configuration of the dynamic-tree model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynaTreeConfig {
    /// Number of particles. The paper sets the R `dynaTree` package to 5,000
    /// particles; a few hundred are sufficient for the simulated workloads
    /// and keep the experiment harness fast.
    pub particles: usize,
    /// Base of the Chipman–George–McCulloch split prior
    /// `p_split(depth) = alpha (1 + depth)^(-beta)`.
    pub alpha: f64,
    /// Decay exponent of the split prior.
    pub beta: f64,
    /// Minimum number of observations in each child of a split.
    pub min_leaf: usize,
    /// Number of random split proposals considered per grow move.
    pub grow_attempts: usize,
    /// Seed for the model's internal randomness (resampling and moves).
    pub seed: u64,
}

impl Default for DynaTreeConfig {
    fn default() -> Self {
        DynaTreeConfig {
            particles: 200,
            alpha: 0.95,
            beta: 2.0,
            min_leaf: 2,
            grow_attempts: 4,
            seed: 0,
        }
    }
}

/// The stochastic move one particle chose for the current observation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Decision {
    Stay,
    Grow(Split),
    Prune,
}

/// Reusable per-update workspace: after the first few updates no buffer here
/// is ever reallocated, which keeps the particle-learning step
/// allocation-free on the common path (the thread-pool shim's internal
/// per-call staging aside).
#[derive(Debug, Clone, Default)]
struct UpdateScratch {
    /// Per-particle log predictive densities of the new observation.
    log_weights: Vec<f64>,
    /// Normalized (shifted, exponentiated) weights.
    weights: Vec<f64>,
    /// Systematic-resampling ancestor indices.
    indices: Vec<usize>,
    /// Arena slot → group index for this update ([`NO_GROUP`] if unused).
    arena_group: Vec<u32>,
    /// Group index → arena slot, in first-seen particle order.
    unique: Vec<u32>,
    /// Group index → leaf that contains the new observation.
    group_leaf: Vec<u32>,
    /// Staging for the resampled particle→slot assignment.
    new_particles: Vec<u32>,
    /// Per-group gathered leaf columns for split proposals.
    gather: Vec<LeafColumns>,
    /// Movers staged for the parallel apply pass:
    /// `(particle, slot, leaf, decision)`.
    movers: Vec<(u32, u32, u32, Decision)>,
}

/// Particle-learning dynamic-tree regressor.
///
/// See the [module documentation](self) for the algorithm and the crate
/// documentation for a usage example.
#[derive(Debug, Clone)]
pub struct DynaTree {
    config: DynaTreeConfig,
    prior: LeafPrior,
    /// Flat row-major training inputs. The placeholder width used before
    /// [`fit`](SurrogateModel::fit) is never read (`dimension` is `None`).
    xs: FeatureMatrix,
    ys: Vec<f64>,
    /// Arena slot pool. Slots with a zero refcount hold retired trees whose
    /// allocations are recycled by the next copy-on-write clone.
    arenas: Vec<ParticleTree>,
    /// Number of particles currently sharing each slot.
    arena_refs: Vec<u32>,
    /// Zero-refcount slots, ascending; popped from the back.
    arena_free: Vec<u32>,
    /// Per-particle arena slot.
    particles: Vec<u32>,
    /// Master stream: consumed only by systematic resampling.
    rng: StatsRng,
    dimension: Option<usize>,
    /// Memoized `ln Γ` evaluations, extended once per update.
    table: LnGammaTable,
    /// Memoized per-depth `(ln p_split, ln(1 − p_split))` pairs.
    split_prior: Vec<(f64, f64)>,
    /// Monotone upper bound on any tree depth across the particle set;
    /// sizes `split_prior`.
    depth_bound: usize,
    scratch: UpdateScratch,
}

impl DynaTree {
    /// Creates an unfitted model with the given configuration.
    pub fn new(config: DynaTreeConfig) -> Self {
        let prior = LeafPrior::default();
        DynaTree {
            config,
            table: LnGammaTable::new(&prior),
            split_prior: Vec::new(),
            depth_bound: 0,
            prior,
            xs: FeatureMatrix::new(1),
            ys: Vec::new(),
            arenas: Vec::new(),
            arena_refs: Vec::new(),
            arena_free: Vec::new(),
            particles: Vec::new(),
            rng: seeded_stream(config.seed, 0xD14A),
            dimension: None,
            scratch: UpdateScratch::default(),
        }
    }

    /// Creates an unfitted model with default configuration and the given
    /// seed.
    pub fn with_seed(seed: u64) -> Self {
        DynaTree::new(DynaTreeConfig {
            seed,
            ..Default::default()
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &DynaTreeConfig {
        &self.config
    }

    /// The shared leaf prior (derived from the initial training targets).
    pub fn prior(&self) -> &LeafPrior {
        &self.prior
    }

    /// Average number of leaves across particles (a measure of model
    /// complexity).
    pub fn mean_leaf_count(&self) -> f64 {
        if self.particles.is_empty() {
            return 0.0;
        }
        self.particles
            .iter()
            .map(|&slot| self.arenas[slot as usize].leaf_count() as f64)
            .sum::<f64>()
            / self.particles.len() as f64
    }

    /// Number of *unique* trees behind the particle set. Structural sharing
    /// keeps this below the particle count whenever resampling duplicated a
    /// particle that has not diverged yet.
    pub fn unique_tree_count(&self) -> usize {
        self.arena_refs.iter().filter(|&&r| r > 0).count()
    }

    /// Recomputes every live tree's cached flat traversal and leaf moments
    /// from scratch and compares them bitwise against the maintained
    /// caches. Exercised by the root-level property tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence found.
    #[doc(hidden)]
    pub fn validate_caches(&self) -> std::result::Result<(), String> {
        let ctx = MomentCtx {
            prior: &self.prior,
            table: &self.table,
        };
        for (slot, (tree, &refs)) in self.arenas.iter().zip(&self.arena_refs).enumerate() {
            if refs > 0 {
                tree.validate_caches(&self.xs, &ctx)
                    .map_err(|e| format!("arena {slot}: {e}"))?;
            }
        }
        Ok(())
    }

    /// Rebuilds a model from a [`SurrogateModel::snapshot`] document. The
    /// restored model is behaviorally bit-identical to the serialized one:
    /// predictions, acquisition scores and every future update (including
    /// the master resampling stream, which resumes mid-sequence) continue
    /// exactly where it stopped. Retired zero-reference arena slots are
    /// stored as nulls and restored as placeholders — their contents are
    /// only ever overwritten, never read.
    pub(crate) fn from_snapshot(doc: &JsonValue) -> Result<Self> {
        let config = DynaTreeConfig {
            particles: snapshot::get_usize(doc, "config_particles")?,
            alpha: snapshot::get_hex_f64(doc, "config_alpha")?,
            beta: snapshot::get_hex_f64(doc, "config_beta")?,
            min_leaf: snapshot::get_usize(doc, "config_min_leaf")?,
            grow_attempts: snapshot::get_usize(doc, "config_grow_attempts")?,
            seed: snapshot::get_hex_u64(doc, "config_seed")?,
        };
        let prior = LeafPrior {
            mean: snapshot::get_hex_f64(doc, "prior_mean")?,
            kappa: snapshot::get_hex_f64(doc, "prior_kappa")?,
            shape: snapshot::get_hex_f64(doc, "prior_shape")?,
            scale: snapshot::get_hex_f64(doc, "prior_scale")?,
        };
        let dim = snapshot::get_usize(doc, "xs_dim")?.max(1);
        let flat = snapshot::get_hex_f64s(doc, "xs")?;
        if flat.len() % dim != 0 {
            return Err(snapshot::err("field xs: length is not a multiple of dim"));
        }
        let ys = snapshot::get_hex_f64s(doc, "ys")?;
        if flat.len() / dim != ys.len() {
            return Err(snapshot::err("fields xs/ys: row counts disagree"));
        }
        let mut xs = FeatureMatrix::with_capacity(dim, ys.len());
        for row in flat.chunks_exact(dim) {
            xs.push_row(row);
        }
        let particles = snapshot::get_hex_u32s(doc, "particles")?;
        let rng_words = snapshot::get_hex_u32s(doc, "rng")?;
        let rng = StatsRng::from_state_words(&rng_words)
            .ok_or_else(|| snapshot::err("field rng: malformed generator state"))?;
        let dimension = match snapshot::get(doc, "dimension")? {
            JsonValue::Null => None,
            _ => Some(snapshot::get_usize(doc, "dimension")?),
        };
        let depth_bound = snapshot::get_usize(doc, "depth_bound")?;
        let mut table = LnGammaTable::new(&prior);
        table.ensure(ys.len().max(1));
        let arena_docs = snapshot::get_array(doc, "arenas")?;
        let mut arena_refs = vec![0u32; arena_docs.len()];
        for &slot in &particles {
            let Some(refs) = arena_refs.get_mut(slot as usize) else {
                return Err(snapshot::err(format!("particle slot {slot} out of range")));
            };
            *refs += 1;
        }
        let mut arenas = Vec::with_capacity(arena_docs.len());
        {
            let ctx = MomentCtx {
                prior: &prior,
                table: &table,
            };
            for (slot, tree_doc) in arena_docs.iter().enumerate() {
                if arena_refs[slot] == 0 {
                    arenas.push(ParticleTree::placeholder());
                } else if tree_doc.is_null() {
                    return Err(snapshot::err(format!(
                        "arena slot {slot} is live but stored as null"
                    )));
                } else {
                    arenas.push(ParticleTree::from_snapshot(tree_doc, &ctx, ys.len())?);
                }
            }
        }
        let arena_free: Vec<u32> = arena_refs
            .iter()
            .enumerate()
            .filter(|&(_, &refs)| refs == 0)
            .map(|(slot, _)| slot as u32)
            .collect();
        let mut model = DynaTree {
            config,
            prior,
            xs,
            ys,
            arenas,
            arena_refs,
            arena_free,
            particles,
            rng,
            dimension,
            table,
            split_prior: Vec::new(),
            depth_bound,
            scratch: UpdateScratch::default(),
        };
        model.ensure_split_prior(model.depth_bound + 2);
        Ok(model)
    }

    fn check_dimension(&self, x: &[f64]) -> Result<()> {
        match self.dimension {
            None => Err(ModelError::NotFitted),
            Some(d) if d == x.len() => Ok(()),
            Some(d) => Err(ModelError::DimensionMismatch {
                expected: d,
                actual: x.len(),
            }),
        }
    }

    /// Unique `(slot, multiplicity)` pairs in first-seen particle order.
    /// Every scoring path iterates trees through this, so shared particles
    /// are traversed once and accumulated with their multiplicity — in the
    /// same order as a per-particle loop, which keeps single-point and
    /// batched results bit-identical.
    fn arena_groups(&self) -> Vec<(u32, u32)> {
        let mut groups: Vec<(u32, u32)> = Vec::new();
        let mut index_of = vec![NO_GROUP; self.arenas.len()];
        for &slot in &self.particles {
            let g = index_of[slot as usize];
            if g == NO_GROUP {
                index_of[slot as usize] = groups.len() as u32;
                groups.push((slot, 1));
            } else {
                groups[g as usize].1 += 1;
            }
        }
        groups
    }

    /// The split prior `p_split(depth) = α (1 + depth)^(−β)`, clamped away
    /// from 0 and 1.
    fn p_split(config: &DynaTreeConfig, depth: usize) -> f64 {
        (config.alpha * (1.0 + depth as f64).powf(-config.beta)).clamp(1e-9, 1.0 - 1e-9)
    }

    /// Extends the memoized per-depth split-prior table to cover
    /// `0..=max_depth`: entry `d` is `(ln p_split(d), ln(1 − p_split(d)))`.
    /// The prior depends only on the (immutable) `alpha`/`beta`
    /// configuration, so the table never needs invalidation — the `powf`
    /// and `ln` calls leave the per-particle hot path entirely.
    fn ensure_split_prior(&mut self, max_depth: usize) {
        while self.split_prior.len() <= max_depth {
            let p = Self::p_split(&self.config, self.split_prior.len());
            self.split_prior.push((p.ln(), (1.0 - p).ln()));
        }
    }

    /// Proposes the best of `grow_attempts` random splits of the leaf,
    /// returning the split and the children's combined log marginal
    /// likelihood. Reads the leaf's maintained bounds, its statistics'
    /// totals and the particle's own RNG stream; the points themselves come
    /// from the per-group column gather, which lists them in point-list
    /// order — the same sequence a direct walk of the tree would yield.
    ///
    /// All attempts of a batch (up to [`ATTEMPT_BATCH`]) are handed to one
    /// [`scan::scan_left`] call: each attempt's left-side `(n, Σy, Σy²)`
    /// comes back bit-identical regardless of the configured kernel. The
    /// right side is `totals − left`, and the children's likelihoods come
    /// from [`log_marginal_likelihood_of_sums`], compared in attempt order
    /// so results match an attempt-at-a-time evaluation.
    #[allow(clippy::too_many_arguments)]
    fn propose_split<F>(
        config: &DynaTreeConfig,
        ctx: &MomentCtx<'_>,
        len: usize,
        totals: (f64, f64),
        bounds: &[f64],
        dim: usize,
        rng: &mut SmallRng,
        scan: F,
    ) -> Option<(Split, f64)>
    where
        F: Fn(
            &[usize; ATTEMPT_BATCH],
            &[f64; ATTEMPT_BATCH],
            usize,
        ) -> (
            [f64; ATTEMPT_BATCH],
            [f64; ATTEMPT_BATCH],
            [f64; ATTEMPT_BATCH],
        ),
    {
        if len < 2 * config.min_leaf {
            return None;
        }
        let (total_sum, total_sum_sq) = totals;
        let mut best: Option<(Split, f64)> = None;
        let mut remaining = config.grow_attempts;
        while remaining > 0 {
            let batch = remaining.min(ATTEMPT_BATCH);
            remaining -= batch;
            // Draw the batch's attempts in the same interleaved order an
            // attempt-at-a-time loop would (dimension, then threshold for
            // non-degenerate dimensions only).
            let mut dims = [0usize; ATTEMPT_BATCH];
            let mut thresholds = [0.0f64; ATTEMPT_BATCH];
            let mut live = 0usize;
            for _ in 0..batch {
                let d = rng.gen_index(dim);
                let (lo, hi) = (bounds[2 * d], bounds[2 * d + 1]);
                if hi <= lo {
                    continue;
                }
                dims[live] = d;
                thresholds[live] = rng.gen_range_f64(lo, hi);
                live += 1;
            }
            if live == 0 {
                continue;
            }
            let (n_left, sum_left, sum_sq_left) = scan(&dims, &thresholds, live);
            for k in 0..live {
                let left_count = n_left[k] as usize;
                let right_count = len - left_count;
                if left_count < config.min_leaf || right_count < config.min_leaf {
                    continue;
                }
                let lml = log_marginal_likelihood_of_sums(
                    left_count,
                    sum_left[k],
                    sum_sq_left[k],
                    ctx.prior,
                    ctx.table,
                ) + log_marginal_likelihood_of_sums(
                    right_count,
                    total_sum - sum_left[k],
                    total_sum_sq - sum_sq_left[k],
                    ctx.prior,
                    ctx.table,
                );
                let split = Split {
                    dimension: dims[k],
                    threshold: thresholds[k],
                };
                if best.as_ref().is_none_or(|(_, b)| lml > *b) {
                    best = Some((split, lml));
                }
            }
        }
        best
    }

    /// Decides one particle's stay/grow/prune move around the leaf that
    /// received the new observation. Pure read of the (possibly shared)
    /// tree plus the particle's own RNG stream; the chosen move is applied
    /// later, after copy-on-write slot assignment.
    #[allow(clippy::too_many_arguments)]
    fn decide_move(
        config: &DynaTreeConfig,
        ctx: &MomentCtx<'_>,
        split_prior: &[(f64, f64)],
        tree: &ParticleTree,
        leaf: usize,
        gather: &LeafColumns,
        xs: &FeatureMatrix,
        ys: &[f64],
        dim: usize,
        rng: &mut SmallRng,
    ) -> Decision {
        let depth = tree.depth_of(leaf);
        let leaf_lml = tree.leaf_moments()[leaf].lml;

        // Log-odds of the candidate moves relative to "stay" (whose log-odds
        // are zero by construction). At most three moves exist, so the
        // candidate list lives on the stack.
        let mut moves = [(Decision::Stay, 0.0); 3];
        let mut n_moves = 1;

        let stats = tree.leaf_stats(leaf);
        let (len, totals) = (stats.count(), stats.sum_and_sum_sq());
        let bounds = tree.leaf_bounds(leaf);
        // Sole-owner leaves stream the point list straight into the fused
        // scalar kernel (the gather is skipped for them — see phase 5);
        // shared leaves scan the gathered columns with the configured
        // kernel. Both paths visit points in list order, so the proposals
        // are bit-identical either way.
        let proposal = if gather.is_empty() {
            Self::propose_split(config, ctx, len, totals, bounds, dim, rng, |d, t, live| {
                scan::scan_left_direct(
                    tree.leaf_points(leaf).map(|p| (xs.row(p), ys[p])),
                    d,
                    t,
                    live,
                )
            })
        } else {
            debug_assert_eq!(gather.len(), len, "gather out of sync with leaf");
            Self::propose_split(config, ctx, len, totals, bounds, dim, rng, |d, t, live| {
                scan::scan_left(DEFAULT_SCAN_KIND, gather, d, t, live)
            })
        };
        if let Some((split, children_lml)) = proposal {
            let (ln_p_here, ln_q_here) = split_prior[depth];
            let (_, ln_q_child) = split_prior[depth + 1];
            let log_odds = children_lml - leaf_lml + ln_p_here + 2.0 * ln_q_child - ln_q_here;
            moves[n_moves] = (Decision::Grow(split), log_odds);
            n_moves += 1;
        }

        if let Some(sibling) = tree.leaf_sibling(leaf) {
            let sibling_lml = tree.leaf_moments()[sibling].lml;
            let mut merged = *tree.leaf_stats(leaf);
            merged.merge(tree.leaf_stats(sibling));
            let merged_lml = merged.log_marginal_likelihood_with(ctx.prior, ctx.table);
            let parent_depth = depth.saturating_sub(1);
            let (ln_p_parent, ln_q_parent) = split_prior[parent_depth];
            let (_, ln_q_here) = split_prior[depth];
            let log_odds =
                merged_lml + ln_q_parent - (leaf_lml + sibling_lml + ln_p_parent + 2.0 * ln_q_here);
            moves[n_moves] = (Decision::Prune, log_odds);
            n_moves += 1;
        }

        // Sample a move with probability proportional to exp(log-odds).
        let moves = &moves[..n_moves];
        let max = moves
            .iter()
            .map(|(_, w)| *w)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut weights = [0.0f64; 3];
        for (w, (_, log_odds)) in weights.iter_mut().zip(moves) {
            *w = (log_odds - max).exp();
        }
        let weights = &weights[..n_moves];
        let total: f64 = weights.iter().sum();
        let mut pick = rng.gen_range_f64(0.0, total);
        let mut chosen = Decision::Stay;
        for (&(kind, _), &w) in moves.iter().zip(weights) {
            if pick < w {
                chosen = kind;
                break;
            }
            pick -= w;
        }
        chosen
    }

    fn update_inner(&mut self, x: &[f64], y: f64) {
        let index = self.ys.len();
        self.xs.push_row(x);
        self.ys.push(y);
        self.table.ensure(self.ys.len());
        // Decide needs priors at `depth + 1` for every current leaf depth.
        self.ensure_split_prior(self.depth_bound + 2);
        let dim = self.xs.dim();
        let mut scratch = std::mem::take(&mut self.scratch);

        // 1. Group particles by unique arena (first-seen order). Everything
        //    that depends only on the tree — weighting, insertion, leaf
        //    gathering — runs once per group below.
        scratch.arena_group.clear();
        scratch.arena_group.resize(self.arenas.len(), NO_GROUP);
        scratch.unique.clear();
        for &slot in &self.particles {
            if scratch.arena_group[slot as usize] == NO_GROUP {
                scratch.arena_group[slot as usize] = scratch.unique.len() as u32;
                scratch.unique.push(slot);
            }
        }

        // 2. Weight pass: one flat traversal + cached-density evaluation per
        //    unique tree, in parallel, then broadcast to the particles.
        let groups = scratch.unique.len();
        let weighted: Vec<(u32, f64)> = {
            let arenas = &self.arenas;
            let unique = &scratch.unique;
            (0..groups)
                .into_par_iter()
                .map(|g| {
                    let tree = &arenas[unique[g] as usize];
                    let leaf = find_leaf_flat(tree.flat_nodes(), x);
                    (leaf as u32, tree.leaf_moments()[leaf].log_density(y))
                })
                .collect()
        };
        scratch.group_leaf.clear();
        scratch.log_weights.clear();
        scratch.group_leaf.extend(weighted.iter().map(|&(l, _)| l));
        scratch.log_weights.extend(
            self.particles
                .iter()
                .map(|&slot| weighted[scratch.arena_group[slot as usize] as usize].1),
        );

        // 3. Systematic resampling on the master stream (serial; one draw).
        systematic_resample(
            &mut self.rng,
            &scratch.log_weights,
            &mut scratch.weights,
            &mut scratch.indices,
        );

        // 4. Remap particles to their ancestors' slots and recount arena
        //    references. Duplicates share their ancestor's arena — no clone
        //    happens here.
        scratch.new_particles.clear();
        scratch
            .new_particles
            .extend(scratch.indices.iter().map(|&i| self.particles[i]));
        std::mem::swap(&mut self.particles, &mut scratch.new_particles);
        self.arena_refs.clear();
        self.arena_refs.resize(self.arenas.len(), 0);
        for &slot in &self.particles {
            self.arena_refs[slot as usize] += 1;
        }
        self.arena_free.clear();
        for slot in 0..self.arena_refs.len() {
            if self.arena_refs[slot] == 0 {
                self.arena_free.push(slot as u32);
            }
        }

        // 5. Insert the observation and gather the receiving leaf once per
        //    *surviving* unique tree. Inserting is O(1) per tree; the
        //    column gather is one walk of the leaf's point list, after
        //    which every sharer's proposal scan reads contiguous columns.
        //    This pass runs serially in place — staging trees onto the
        //    thread pool costs more than the work itself.
        scratch.gather.resize_with(groups, LeafColumns::default);
        let ctx = MomentCtx {
            prior: &self.prior,
            table: &self.table,
        };
        let min_leaf = self.config.min_leaf;
        for g in 0..groups {
            let slot = scratch.unique[g] as usize;
            if self.arena_refs[slot] == 0 {
                continue;
            }
            let tree = &mut self.arenas[slot];
            let leaf = scratch.group_leaf[g] as usize;
            tree.insert_at(leaf, index, x, y, &ctx);
            // The column copy pays off only when several sharers will scan
            // it; a sole owner streams the list directly into the fused
            // kernel, and an unsplittable leaf never reaches the scan.
            let gather = &mut scratch.gather[g];
            let count = tree.leaf_stats(leaf).count();
            if self.arena_refs[slot] > 1 && count >= 2 * min_leaf {
                let (xs, ys) = (&self.xs, &self.ys);
                gather.fill(
                    dim,
                    count,
                    tree.leaf_points(leaf).map(|p| (xs.row(p), ys[p])),
                );
            } else {
                gather.clear();
            }
        }

        // 6. Decide every particle's move in parallel on its own
        //    `(seed, observation, particle)` RNG stream.
        let decisions: Vec<Decision> = {
            let arenas = &self.arenas;
            let particles = &self.particles;
            let arena_group = &scratch.arena_group;
            let group_leaf = &scratch.group_leaf;
            let gather = &scratch.gather;
            let config = &self.config;
            let split_prior = &self.split_prior;
            let xs = &self.xs;
            let ys = &self.ys;
            (0..particles.len())
                .into_par_iter()
                .map(|i| {
                    let slot = particles[i] as usize;
                    let g = arena_group[slot] as usize;
                    let mut rng = SmallRng::substream(config.seed, index as u64, i as u64);
                    Self::decide_move(
                        config,
                        &ctx,
                        split_prior,
                        &arenas[slot],
                        group_leaf[g] as usize,
                        &gather[g],
                        xs,
                        ys,
                        dim,
                        &mut rng,
                    )
                })
                .collect()
        };

        // 7. Copy-on-write slot assignment (serial): a mover that still
        //    shares its arena clones it into a recycled slot; the last owner
        //    mutates in place. Stayers keep sharing.
        scratch.movers.clear();
        for (i, &decision) in decisions.iter().enumerate() {
            if decision == Decision::Stay {
                continue;
            }
            let slot = self.particles[i] as usize;
            let leaf = scratch.group_leaf[scratch.arena_group[slot] as usize];
            let dst = if self.arena_refs[slot] > 1 {
                self.arena_refs[slot] -= 1;
                let dst = match self.arena_free.pop() {
                    Some(free) => free as usize,
                    None => {
                        self.arenas.push(ParticleTree::placeholder());
                        self.arena_refs.push(0);
                        self.arenas.len() - 1
                    }
                };
                clone_slot(&mut self.arenas, slot, dst);
                self.arena_refs[dst] = 1;
                self.particles[i] = dst as u32;
                dst
            } else {
                slot
            };
            scratch.movers.push((i as u32, dst as u32, leaf, decision));
        }

        // 8. Apply the divergent moves in parallel: every mover owns its
        //    arena exclusively now, so the trees are moved out, mutated and
        //    written back by slot.
        let mut mover_trees: Vec<(u32, ParticleTree, u32, Decision)> = scratch
            .movers
            .iter()
            .map(|&(_, slot, leaf, decision)| {
                (
                    slot,
                    std::mem::replace(&mut self.arenas[slot as usize], ParticleTree::placeholder()),
                    leaf,
                    decision,
                )
            })
            .collect();
        {
            let xs = &self.xs;
            let ys = &self.ys;
            mover_trees = mover_trees
                .into_par_iter()
                .map(|(slot, mut tree, leaf, decision)| {
                    match decision {
                        Decision::Stay => unreachable!("stayers are filtered out"),
                        Decision::Grow(split) => {
                            // The proposal verified both children meet
                            // `min_leaf` with these exact comparisons.
                            tree.grow_unchecked(leaf as usize, split, xs, ys, &ctx);
                        }
                        Decision::Prune => {
                            tree.prune(leaf as usize, &ctx);
                        }
                    }
                    (slot, tree, leaf, decision)
                })
                .collect();
        }
        let mut depth_bound = self.depth_bound;
        for (slot, tree, _, _) in mover_trees {
            depth_bound = depth_bound.max(tree.depth_bound());
            self.arenas[slot as usize] = tree;
        }
        self.depth_bound = depth_bound;

        self.scratch = scratch;
    }
}

/// Clones the arena in `src` into `dst` (disjoint slots of the same pool),
/// reusing `dst`'s allocations.
fn clone_slot(arenas: &mut [ParticleTree], src: usize, dst: usize) {
    debug_assert_ne!(src, dst);
    if src < dst {
        let (a, b) = arenas.split_at_mut(dst);
        b[0].clone_from(&a[src]);
    } else {
        let (a, b) = arenas.split_at_mut(src);
        a[dst].clone_from(&b[0]);
    }
}

/// Systematic resampling of particle indices proportionally to the given log
/// weights, written into `indices` (the identity assignment when the weights
/// are degenerate). `weights` is a reusable workspace.
fn systematic_resample(
    rng: &mut StatsRng,
    log_weights: &[f64],
    weights: &mut Vec<f64>,
    indices: &mut Vec<usize>,
) {
    let n = log_weights.len();
    let max = log_weights
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    weights.clear();
    weights.extend(log_weights.iter().map(|w| (w - max).exp()));
    let total: f64 = weights.iter().sum();
    indices.clear();
    if !(total.is_finite()) || total <= 0.0 {
        indices.extend(0..n);
        return;
    }
    let step = total / n as f64;
    let start: f64 = rng.gen_range(0.0..step);
    let mut cumulative = weights[0];
    let mut j = 0;
    for i in 0..n {
        let target = start + i as f64 * step;
        while cumulative < target && j + 1 < n {
            j += 1;
            cumulative += weights[j];
        }
        indices.push(j);
    }
}

impl SurrogateModel for DynaTree {
    fn fit(&mut self, xs: &[&[f64]], ys: &[f64]) -> Result<()> {
        let dim = validate_training_set(xs, ys)?;
        self.dimension = Some(dim);
        self.xs = FeatureMatrix::with_capacity(dim, xs.len());
        self.ys.clear();
        // Leaf prior derived from the initial targets: centre on their mean,
        // expect within-leaf variance to be a fraction of the overall spread.
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let variance = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / ys.len() as f64;
        self.prior = LeafPrior::weakly_informative(mean, (0.25 * variance).max(1e-10));
        self.table = LnGammaTable::new(&self.prior);
        self.table.ensure(1);

        // Start from a *single* root tree shared by every particle: the
        // structural sharing machinery lets particles diverge only when
        // their moves do, so the early fit updates run once per unique tree
        // instead of once per particle.
        self.xs.push_row(xs[0]);
        self.ys.push(ys[0]);
        self.arenas.clear();
        self.arena_refs.clear();
        self.arena_free.clear();
        self.particles.clear();
        self.depth_bound = 0;
        if self.config.particles > 0 {
            let ctx = MomentCtx {
                prior: &self.prior,
                table: &self.table,
            };
            self.arenas
                .push(ParticleTree::new_root(&[0], &self.xs, &self.ys, &ctx));
            self.arena_refs.push(self.config.particles as u32);
            self.particles = vec![0; self.config.particles];
        }
        for (x, &y) in xs.iter().zip(ys).skip(1) {
            self.update_inner(x, y);
        }
        Ok(())
    }

    fn update(&mut self, x: &[f64], y: f64) -> Result<()> {
        self.check_dimension(x)?;
        crate::validate_observation(x, y)?;
        self.update_inner(x, y);
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<Prediction> {
        self.check_dimension(x)?;
        if self.particles.is_empty() {
            return Err(ModelError::NotFitted);
        }
        let mut mean_acc = 0.0;
        let mut second_moment = 0.0;
        for &(slot, mult) in &self.arena_groups() {
            let tree = &self.arenas[slot as usize];
            let m = &tree.leaf_moments()[find_leaf_flat(tree.flat_nodes(), x)];
            let k = mult as f64;
            mean_acc += k * m.mean;
            second_moment += k * (m.variance + m.mean * m.mean);
        }
        let n = self.particles.len() as f64;
        let mean = mean_acc / n;
        let variance = (second_moment / n - mean * mean).max(0.0);
        Ok(Prediction::new(mean, variance))
    }

    fn predict_batch(&self, inputs: &[&[f64]]) -> Result<Vec<Prediction>> {
        for x in inputs {
            self.check_dimension(x)?;
        }
        if self.particles.is_empty() {
            return Err(ModelError::NotFitted);
        }
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        // The cached flat traversals and leaf moments make this a pure read:
        // no flattening, no posterior computation, just one traversal per
        // (unique tree, input) pair. Candidate blocks are chunked directly
        // by index; block `b` covers `inputs[b*SCORE_BLOCK..]`.
        let groups = self.arena_groups();
        let n = self.particles.len() as f64;
        let scored: Vec<Vec<Prediction>> = (0..inputs.len().div_ceil(SCORE_BLOCK))
            .into_par_iter()
            .map(|b| {
                let lo = b * SCORE_BLOCK;
                let block = &inputs[lo..(lo + SCORE_BLOCK).min(inputs.len())];
                // Accumulate over unique trees in first-seen particle order
                // with multiplicity weights, exactly like `predict`, so
                // results are bit-identical to the single-point method and
                // independent of the thread count. Each tree is applied in
                // two block-wide passes — resolve every candidate's leaf,
                // then gather that leaf's moments — so the traversal loop
                // carries no accumulator dependencies and the gather loop
                // is a tight indexed sweep (same adds in the same order as
                // a fused loop).
                let mut mean_acc = vec![0.0f64; block.len()];
                let mut second_moment = vec![0.0f64; block.len()];
                let mut staged = QueryBlock::default();
                staged.fill(block[0].len(), block);
                let mut stack = Vec::new();
                for &(slot, mult) in &groups {
                    let tree = &self.arenas[slot as usize];
                    let flat = tree.flat_nodes();
                    let moments = tree.leaf_moments();
                    let k = mult as f64;
                    for_each_block_leaf(flat, &staged, &mut stack, |i, leaf| {
                        let m = &moments[leaf as usize];
                        mean_acc[i] += k * m.mean;
                        second_moment[i] += k * (m.variance + m.mean * m.mean);
                    });
                }
                mean_acc
                    .iter()
                    .zip(&second_moment)
                    .map(|(&acc, &sm)| {
                        let mean = acc / n;
                        let variance = (sm / n - mean * mean).max(0.0);
                        Prediction::new(mean, variance)
                    })
                    .collect()
            })
            .collect();
        Ok(scored.into_iter().flatten().collect())
    }

    fn observation_count(&self) -> usize {
        self.ys.len()
    }

    fn dimension(&self) -> Option<usize> {
        self.dimension
    }

    fn snapshot(&self) -> Result<Snapshot> {
        let mut arenas = Vec::with_capacity(self.arenas.len());
        for (tree, &refs) in self.arenas.iter().zip(&self.arena_refs) {
            arenas.push(if refs == 0 {
                JsonValue::Null
            } else {
                tree.to_snapshot()?
            });
        }
        let mut fields = snapshot::header("dynatree");
        fields.extend([
            (
                "config_particles".to_string(),
                snapshot::num(self.config.particles),
            ),
            (
                "config_alpha".to_string(),
                snapshot::hex_f64(self.config.alpha),
            ),
            (
                "config_beta".to_string(),
                snapshot::hex_f64(self.config.beta),
            ),
            (
                "config_min_leaf".to_string(),
                snapshot::num(self.config.min_leaf),
            ),
            (
                "config_grow_attempts".to_string(),
                snapshot::num(self.config.grow_attempts),
            ),
            (
                "config_seed".to_string(),
                snapshot::hex_u64(self.config.seed),
            ),
            ("prior_mean".to_string(), snapshot::hex_f64(self.prior.mean)),
            (
                "prior_kappa".to_string(),
                snapshot::hex_f64(self.prior.kappa),
            ),
            (
                "prior_shape".to_string(),
                snapshot::hex_f64(self.prior.shape),
            ),
            (
                "prior_scale".to_string(),
                snapshot::hex_f64(self.prior.scale),
            ),
            ("xs_dim".to_string(), snapshot::num(self.xs.dim())),
            (
                "xs".to_string(),
                snapshot::hex_f64s(self.xs.rows().flatten().copied()),
            ),
            (
                "ys".to_string(),
                snapshot::hex_f64s(self.ys.iter().copied()),
            ),
            (
                "particles".to_string(),
                snapshot::hex_u32s(self.particles.iter().copied()),
            ),
            (
                "rng".to_string(),
                snapshot::hex_u32s(self.rng.state_words()),
            ),
            (
                "dimension".to_string(),
                match self.dimension {
                    None => JsonValue::Null,
                    Some(d) => snapshot::num(d),
                },
            ),
            ("depth_bound".to_string(), snapshot::num(self.depth_bound)),
            ("arenas".to_string(), JsonValue::Array(arenas)),
        ]);
        Ok(JsonValue::Object(fields))
    }
}

impl ActiveSurrogate for DynaTree {
    fn alc_score(&self, candidate: &[f64], reference: &[&[f64]]) -> Result<f64> {
        Ok(self.alc_scores(&[candidate], reference)?[0])
    }

    fn alc_scores(&self, candidates: &[&[f64]], reference: &[&[f64]]) -> Result<Vec<f64>> {
        if self.particles.is_empty() {
            return Err(ModelError::NotFitted);
        }
        for c in candidates {
            self.check_dimension(c)?;
        }
        for r in reference {
            self.check_dimension(r)?;
        }
        // With no reference set there is nothing to average over; fall back
        // to the ALM criterion so the scores still order candidates usefully.
        if reference.is_empty() {
            return self.alm_scores(candidates);
        }
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        // Pre-compute, per unique tree, each leaf's contribution to a
        // candidate landing in it. Observing a candidate shrinks the
        // predictive variance of its leaf by roughly a factor 1/(n_eff + 1),
        // so the expected reduction in *average* variance over the reference
        // set is (sum of the leaf's reference variance) / (n_eff + 1),
        // averaged over particles. Leaves containing no reference mass
        // contribute nothing — exactly like Cohn's criterion, which
        // integrates the reduction over the input distribution. The
        // reference traversals and the division are shared across all
        // candidates (and all particles of a shared tree); the per-candidate
        // work is one cached flat traversal and one table add per unique
        // tree.
        let groups = self.arena_groups();
        let tables: Vec<(u32, f64, Vec<f64>)> = groups
            .par_iter()
            .map(|&(slot, mult)| {
                let tree = &self.arenas[slot as usize];
                let flat = tree.flat_nodes();
                let moments = tree.leaf_moments();
                let mut add = vec![0.0f64; flat.len()];
                let mut staged = QueryBlock::default();
                let mut stack = Vec::new();
                for chunk in reference.chunks(SCORE_BLOCK) {
                    staged.fill(chunk[0].len(), chunk);
                    for_each_block_leaf(flat, &staged, &mut stack, |_, leaf| {
                        add[leaf as usize] += moments[leaf as usize].variance;
                    });
                }
                for (leaf, affected) in add.iter_mut().enumerate() {
                    if *affected > 0.0 {
                        *affected /= moments[leaf].n_eff + 1.0;
                    }
                }
                (slot, mult as f64, add)
            })
            .collect();
        let denominator = reference.len() as f64 * self.particles.len() as f64;
        let scored: Vec<Vec<f64>> = (0..candidates.len().div_ceil(SCORE_BLOCK))
            .into_par_iter()
            .map(|b| {
                let lo = b * SCORE_BLOCK;
                let block = &candidates[lo..(lo + SCORE_BLOCK).min(candidates.len())];
                // Two block-wide passes per tree, like `predict_batch`:
                // traverse, then gather from the contribution table.
                let mut totals = vec![0.0f64; block.len()];
                let mut staged = QueryBlock::default();
                staged.fill(block[0].len(), block);
                let mut stack = Vec::new();
                for (slot, k, add) in &tables {
                    let flat = self.arenas[*slot as usize].flat_nodes();
                    for_each_block_leaf(flat, &staged, &mut stack, |i, leaf| {
                        totals[i] += k * add[leaf as usize];
                    });
                }
                totals.iter().map(|t| t / denominator).collect()
            })
            .collect();
        Ok(scored.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_on(f: impl Fn(f64) -> f64, n: usize, seed: u64) -> DynaTree {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| f(x[0])).collect();
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: 80,
            seed,
            ..Default::default()
        });
        model.fit(&crate::row_views(&xs), &ys).unwrap();
        model
    }

    fn views(rows: &[Vec<f64>]) -> Vec<&[f64]> {
        rows.iter().map(Vec::as_slice).collect()
    }

    #[test]
    fn learns_a_step_function() {
        let model = fit_on(|x| if x <= 0.5 { 1.0 } else { 3.0 }, 60, 1);
        let low = model.predict(&[0.2]).unwrap();
        let high = model.predict(&[0.8]).unwrap();
        assert!((low.mean - 1.0).abs() < 0.4, "low mean {}", low.mean);
        assert!((high.mean - 3.0).abs() < 0.4, "high mean {}", high.mean);
        assert!(model.mean_leaf_count() > 1.0, "trees should have grown");
    }

    #[test]
    fn learns_a_smooth_trend() {
        let model = fit_on(|x| 2.0 + x, 80, 2);
        let a = model.predict(&[0.1]).unwrap().mean;
        let b = model.predict(&[0.9]).unwrap().mean;
        assert!(
            b > a + 0.3,
            "prediction should increase along the trend: {a} vs {b}"
        );
    }

    #[test]
    fn incremental_updates_track_new_information() {
        let mut model = fit_on(|_| 1.0, 30, 3);
        // Feed contradicting data on the right half of the space.
        for i in 0..60 {
            let x = 0.75 + 0.25 * (i % 10) as f64 / 10.0;
            model.update(&[x], 4.0).unwrap();
        }
        let right = model.predict(&[0.9]).unwrap().mean;
        let left = model.predict(&[0.1]).unwrap().mean;
        assert!(right > 2.5, "right half should have adapted, got {right}");
        assert!(left < 2.5, "left half should still be near 1.0, got {left}");
    }

    #[test]
    fn predictions_are_deterministic_for_a_seed() {
        let a = fit_on(|x| x * x, 40, 7);
        let b = fit_on(|x| x * x, 40, 7);
        assert_eq!(a.predict(&[0.3]).unwrap(), b.predict(&[0.3]).unwrap());
    }

    #[test]
    fn variance_is_higher_away_from_data() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 100.0]).collect(); // data in [0, 0.4]
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: 80,
            seed: 5,
            ..Default::default()
        });
        model.fit(&crate::row_views(&xs), &ys).unwrap();
        let inside = model.predict(&[0.2]).unwrap().variance;
        let outside = model.predict(&[0.95]).unwrap().variance;
        assert!(
            outside >= inside * 0.5,
            "extrapolation should not be overconfident: inside {inside}, outside {outside}"
        );
    }

    #[test]
    fn noisy_region_gets_higher_predictive_variance() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..120 {
            let x = i as f64 / 119.0;
            xs.push(vec![x]);
            if x <= 0.5 {
                ys.push(1.0 + 0.002 * (i % 5) as f64);
            } else {
                ys.push(3.0 + ((i % 9) as f64 - 4.0) * 0.4);
            }
        }
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: 100,
            seed: 11,
            ..Default::default()
        });
        model.fit(&crate::row_views(&xs), &ys).unwrap();
        let quiet = model.predict(&[0.25]).unwrap().variance;
        let noisy = model.predict(&[0.75]).unwrap().variance;
        assert!(noisy > quiet, "noisy {noisy} should exceed quiet {quiet}");
    }

    #[test]
    fn alm_and_alc_scores_are_finite_and_nonnegative() {
        let model = fit_on(|x| (6.0 * x).sin(), 50, 13);
        let reference: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let reference = views(&reference);
        for c in [0.05, 0.37, 0.77] {
            let alm = model.alm_score(&[c]).unwrap();
            let alc = model.alc_score(&[c], &reference).unwrap();
            assert!(alm.is_finite() && alm >= 0.0);
            assert!(alc.is_finite() && alc >= 0.0);
        }
    }

    #[test]
    fn alc_prefers_the_noisy_sparse_region() {
        // Dense quiet data on the left, sparse noisy data on the right.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..80 {
            let x = 0.5 * i as f64 / 79.0;
            xs.push(vec![x]);
            ys.push(1.0);
        }
        for i in 0..6 {
            let x = 0.6 + 0.4 * i as f64 / 5.0;
            xs.push(vec![x]);
            ys.push(2.0 + if i % 2 == 0 { 0.8 } else { -0.8 });
        }
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: 100,
            seed: 17,
            ..Default::default()
        });
        model.fit(&crate::row_views(&xs), &ys).unwrap();
        let reference: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
        let scores = model
            .alc_scores(&[&[0.25], &[0.8]], &views(&reference))
            .unwrap();
        assert!(
            scores[1] > scores[0],
            "noisy sparse region should be more informative: {scores:?}"
        );
    }

    #[test]
    fn batch_and_single_alc_agree() {
        let model = fit_on(|x| x, 30, 19);
        let reference: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let reference = views(&reference);
        let batch = model.alc_scores(&[&[0.3], &[0.6]], &reference).unwrap();
        let single0 = model.alc_score(&[0.3], &reference).unwrap();
        let single1 = model.alc_score(&[0.6], &reference).unwrap();
        assert!((batch[0] - single0).abs() < 1e-12);
        assert!((batch[1] - single1).abs() < 1e-12);
    }

    #[test]
    fn predict_batch_is_bit_identical_to_predict() {
        let model = fit_on(|x| (3.0 * x).cos(), 70, 29);
        let points: Vec<Vec<f64>> = (0..150).map(|i| vec![i as f64 / 149.0]).collect();
        let batch = model.predict_batch(&views(&points)).unwrap();
        for (x, p) in points.iter().zip(&batch) {
            assert_eq!(*p, model.predict(x).unwrap());
        }
    }

    #[test]
    fn batch_scores_are_independent_of_the_thread_count() {
        let model = fit_on(|x| (5.0 * x).sin(), 60, 31);
        let candidates: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 199.0]).collect();
        let reference: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let parallel_alc = model
            .alc_scores(&views(&candidates), &views(&reference))
            .unwrap();
        let parallel_alm = model.alm_scores(&views(&candidates)).unwrap();
        rayon::set_num_threads(1);
        let serial_alc = model
            .alc_scores(&views(&candidates), &views(&reference))
            .unwrap();
        let serial_alm = model.alm_scores(&views(&candidates)).unwrap();
        rayon::set_num_threads(0);
        assert_eq!(parallel_alc, serial_alc);
        assert_eq!(parallel_alm, serial_alm);
    }

    #[test]
    fn structural_sharing_survives_updates() {
        let model = fit_on(|x| (2.0 * x).sin(), 60, 37);
        let unique = model.unique_tree_count();
        assert!(unique <= 80, "at most one tree per particle");
        assert!(unique >= 1);
        // Sharing bookkeeping stays consistent with the particle set.
        let total: u32 = model.arena_groups().iter().map(|&(_, mult)| mult).sum();
        assert_eq!(total as usize, 80);
        model.validate_caches().unwrap();
    }

    #[test]
    fn errors_before_fit_and_on_bad_input() {
        let mut model = DynaTree::with_seed(0);
        assert_eq!(model.predict(&[0.0]).unwrap_err(), ModelError::NotFitted);
        assert_eq!(
            model.update(&[0.0], 1.0).unwrap_err(),
            ModelError::NotFitted
        );
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![0.0, 1.0, 2.0];
        model.fit(&crate::row_views(&xs), &ys).unwrap();
        assert!(matches!(
            model.predict(&[0.0, 1.0]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            model.predict_batch(&[&[0.0], &[0.0, 1.0]]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            model.alc_scores(&[&[0.0]], &[&[0.0, 1.0]]),
            Err(ModelError::DimensionMismatch { .. })
        ));
        assert_eq!(
            model.update(&[f64::NAN], 1.0).unwrap_err(),
            ModelError::NonFiniteInput
        );
    }

    #[test]
    fn snapshot_round_trip_continues_bit_identically() {
        let mut a = fit_on(|x| (4.0 * x).sin(), 40, 41);
        let text = a.snapshot().unwrap().to_json_string().unwrap();
        let mut b = DynaTree::from_snapshot(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(a.predict(&[0.37]).unwrap(), b.predict(&[0.37]).unwrap());
        // Further stochastic updates stay in lockstep: the master resampling
        // stream resumes mid-sequence on the restored side.
        for i in 0..12 {
            let x = [(i as f64 * 0.083) % 1.0];
            let y = (4.0 * x[0]).sin() + 0.01 * i as f64;
            a.update(&x, y).unwrap();
            b.update(&x, y).unwrap();
        }
        for i in 0..16 {
            let x = [i as f64 / 15.0];
            assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
        }
        b.validate_caches().unwrap();
        let reference: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0]).collect();
        let reference = views(&reference);
        let candidates: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        assert_eq!(
            a.alc_scores(&views(&candidates), &reference).unwrap(),
            b.alc_scores(&views(&candidates), &reference).unwrap()
        );
    }

    #[test]
    fn observation_count_tracks_fit_and_updates() {
        let mut model = fit_on(|x| x, 25, 23);
        assert_eq!(model.observation_count(), 25);
        model.update(&[0.5], 0.5).unwrap();
        assert_eq!(model.observation_count(), 26);
        assert_eq!(model.dimension(), Some(1));
    }

    #[test]
    fn two_dimensional_structure_is_recovered() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let a = i as f64 / 11.0;
                let b = j as f64 / 11.0;
                xs.push(vec![a, b]);
                ys.push(if a > 0.5 && b > 0.5 { 5.0 } else { 1.0 });
            }
        }
        let mut model = DynaTree::new(DynaTreeConfig {
            particles: 100,
            seed: 29,
            ..Default::default()
        });
        model.fit(&crate::row_views(&xs), &ys).unwrap();
        assert!(model.predict(&[0.9, 0.9]).unwrap().mean > 3.0);
        assert!(model.predict(&[0.1, 0.1]).unwrap().mean < 2.5);
    }
}
