//! k-nearest-neighbour regression.
//!
//! A distance-based sanity-check baseline: its prediction at `x` is the mean
//! of the `k` nearest training targets and its variance is their sample
//! variance. Useful for validating datasets and as a cheap comparison point
//! for the tree models.
//!
//! Training inputs live in a flat row-major [`FeatureMatrix`], and each
//! query selects its `k` nearest neighbours with partial selection
//! (`select_nth_unstable_by`) — `O(n)` expected per query instead of the
//! `O(n log n)` full sort — with a `(distance, index)` total order that
//! reproduces the stable-sort tie-break (lower index wins) exactly.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use alic_stats::matrix::squared_distance;
use alic_stats::summary::Summary;
use alic_stats::FeatureMatrix;

use alic_data::io::JsonValue;

use crate::snapshot::{self, Snapshot};
use crate::traits::{ActiveSurrogate, Prediction, SurrogateModel};
use crate::{validate_training_set, ModelError, Result};

/// Configuration of the k-NN regressor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnnConfig {
    /// Number of neighbours to average.
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig { k: 5 }
    }
}

/// k-nearest-neighbour regressor.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    config: KnnConfig,
    /// Flat row-major training inputs. The placeholder width used before
    /// [`fit`](SurrogateModel::fit) is never read (`dimension` is `None`).
    xs: FeatureMatrix,
    ys: Vec<f64>,
    dimension: Option<usize>,
}

impl Default for KnnRegressor {
    fn default() -> Self {
        KnnRegressor::new(KnnConfig::default())
    }
}

impl KnnRegressor {
    /// Creates an unfitted regressor with the given configuration.
    pub fn new(config: KnnConfig) -> Self {
        KnnRegressor {
            config,
            xs: FeatureMatrix::new(1),
            ys: Vec::new(),
            dimension: None,
        }
    }

    /// Creates an unfitted regressor averaging `k` neighbours.
    pub fn with_k(k: usize) -> Self {
        KnnRegressor::new(KnnConfig { k })
    }

    /// Rebuilds a regressor from a [`SurrogateModel::snapshot`] document.
    pub(crate) fn from_snapshot(doc: &JsonValue) -> Result<Self> {
        let dim = snapshot::get_usize(doc, "xs_dim")?.max(1);
        let flat = snapshot::get_hex_f64s(doc, "xs")?;
        if flat.len() % dim != 0 {
            return Err(snapshot::err("field xs: length is not a multiple of dim"));
        }
        let mut xs = FeatureMatrix::with_capacity(dim, flat.len() / dim);
        for row in flat.chunks_exact(dim) {
            xs.push_row(row);
        }
        let dimension = match snapshot::get(doc, "dimension")? {
            JsonValue::Null => None,
            _ => Some(snapshot::get_usize(doc, "dimension")?),
        };
        Ok(KnnRegressor {
            config: KnnConfig {
                k: snapshot::get_usize(doc, "k")?,
            },
            xs,
            ys: snapshot::get_hex_f64s(doc, "ys")?,
            dimension,
        })
    }

    fn check_dimension(&self, x: &[f64]) -> Result<()> {
        match self.dimension {
            None => Err(ModelError::NotFitted),
            Some(d) if d == x.len() => Ok(()),
            Some(d) => Err(ModelError::DimensionMismatch {
                expected: d,
                actual: x.len(),
            }),
        }
    }
}

/// Total order on `(squared distance, training index)` pairs. Ordering by
/// index second reproduces the tie-break of a stable sort on distance alone:
/// among equidistant neighbours, the earliest training point wins.
fn by_distance_then_index(a: &(f64, usize), b: &(f64, usize)) -> std::cmp::Ordering {
    a.0.partial_cmp(&b.0)
        .expect("finite distances")
        .then(a.1.cmp(&b.1))
}

impl SurrogateModel for KnnRegressor {
    fn fit(&mut self, xs: &[&[f64]], ys: &[f64]) -> Result<()> {
        let dim = validate_training_set(xs, ys)?;
        self.dimension = Some(dim);
        self.xs = FeatureMatrix::with_capacity(dim, xs.len());
        for x in xs {
            self.xs.push_row(x);
        }
        self.ys = ys.to_vec();
        Ok(())
    }

    fn update(&mut self, x: &[f64], y: f64) -> Result<()> {
        self.check_dimension(x)?;
        crate::validate_observation(x, y)?;
        self.xs.push_row(x);
        self.ys.push(y);
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<Prediction> {
        self.check_dimension(x)?;
        let mut indexed: Vec<(f64, usize)> = self
            .xs
            .rows()
            .enumerate()
            .map(|(i, xi)| {
                (
                    squared_distance(xi, x).expect("dimension already validated"),
                    i,
                )
            })
            .collect();
        let k = self.config.k.max(1).min(indexed.len());
        // Partial selection: O(n) expected to isolate the k nearest, then a
        // sort of only those k to fix the averaging order. The
        // distance-then-index order makes both steps deterministic and
        // matches what a full stable sort on distance produced.
        if k < indexed.len() {
            indexed.select_nth_unstable_by(k - 1, by_distance_then_index);
        }
        let neighbours = &mut indexed[..k];
        neighbours.sort_unstable_by(by_distance_then_index);
        let neighbours: Vec<f64> = neighbours.iter().map(|&(_, i)| self.ys[i]).collect();
        let summary = Summary::from_slice(&neighbours);
        Ok(Prediction::new(summary.mean, summary.variance))
    }

    fn predict_batch(&self, inputs: &[&[f64]]) -> Result<Vec<Prediction>> {
        // Each neighbour search scans the full training set; batches are
        // evaluated in parallel with order-preserving write-back.
        inputs.par_iter().map(|x| self.predict(x)).collect()
    }

    fn observation_count(&self) -> usize {
        self.ys.len()
    }

    fn dimension(&self) -> Option<usize> {
        self.dimension
    }

    fn snapshot(&self) -> Result<Snapshot> {
        let mut fields = snapshot::header("knn");
        fields.extend([
            ("k".to_string(), snapshot::num(self.config.k)),
            ("xs_dim".to_string(), snapshot::num(self.xs.dim())),
            (
                "xs".to_string(),
                snapshot::hex_f64s(self.xs.rows().flatten().copied()),
            ),
            (
                "ys".to_string(),
                snapshot::hex_f64s(self.ys.iter().copied()),
            ),
            (
                "dimension".to_string(),
                match self.dimension {
                    None => JsonValue::Null,
                    Some(d) => snapshot::num(d),
                },
            ),
        ]);
        Ok(JsonValue::Object(fields))
    }
}

impl ActiveSurrogate for KnnRegressor {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row_views;

    #[test]
    fn nearest_neighbour_recovers_local_structure() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let mut knn = KnnRegressor::with_k(3);
        knn.fit(&row_views(&xs), &ys).unwrap();
        assert!((knn.predict(&[2.0]).unwrap().mean - 1.0).abs() < 1e-12);
        assert!((knn.predict(&[17.0]).unwrap().mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn variance_reflects_neighbour_disagreement() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 6.0, 2.0, 6.0, 2.0];
        let mut knn = KnnRegressor::with_k(3);
        knn.fit(&row_views(&xs), &ys).unwrap();
        let quiet = knn.predict(&[1.0]).unwrap().variance;
        let noisy = knn.predict(&[7.0]).unwrap().variance;
        assert!(noisy > quiet);
    }

    #[test]
    fn update_adds_neighbours() {
        let xs = vec![vec![0.0], vec![10.0]];
        let ys = vec![0.0, 10.0];
        let mut knn = KnnRegressor::with_k(1);
        knn.fit(&row_views(&xs), &ys).unwrap();
        knn.update(&[5.0], 5.0).unwrap();
        assert!((knn.predict(&[5.1]).unwrap().mean - 5.0).abs() < 1e-12);
        assert_eq!(knn.observation_count(), 3);
    }

    #[test]
    fn k_larger_than_dataset_uses_all_points() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![2.0, 4.0];
        let mut knn = KnnRegressor::with_k(10);
        knn.fit(&row_views(&xs), &ys).unwrap();
        assert!((knn.predict(&[0.5]).unwrap().mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn equidistant_ties_resolve_to_the_earliest_training_point() {
        // Five training points all at the same location with different
        // targets: with k = 2 the partial selection must pick indices 0 and
        // 1 (the stable-sort tie-break), never a later duplicate.
        let xs = vec![vec![1.0]; 5];
        let ys = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        let mut knn = KnnRegressor::with_k(2);
        knn.fit(&row_views(&xs), &ys).unwrap();
        let p = knn.predict(&[1.0]).unwrap();
        assert!((p.mean - 15.0).abs() < 1e-12, "mean {} != 15", p.mean);
        // Symmetric neighbours at equal distance: index order decides.
        let xs = vec![vec![0.0], vec![2.0], vec![0.0], vec![2.0]];
        let ys = vec![1.0, 3.0, 5.0, 7.0];
        let mut knn = KnnRegressor::with_k(2);
        knn.fit(&row_views(&xs), &ys).unwrap();
        let p = knn.predict(&[1.0]).unwrap();
        assert!((p.mean - 2.0).abs() < 1e-12, "mean {} != 2", p.mean);
    }

    #[test]
    fn errors_before_fit() {
        let knn = KnnRegressor::with_k(3);
        assert_eq!(knn.predict(&[0.0]).unwrap_err(), ModelError::NotFitted);
    }
}
