//! k-nearest-neighbour regression.
//!
//! A distance-based sanity-check baseline: its prediction at `x` is the mean
//! of the `k` nearest training targets and its variance is their sample
//! variance. Useful for validating datasets and as a cheap comparison point
//! for the tree models.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use alic_stats::matrix::squared_distance;
use alic_stats::summary::Summary;

use crate::traits::{ActiveSurrogate, Prediction, SurrogateModel};
use crate::{validate_training_set, ModelError, Result};

/// Configuration of the k-NN regressor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnnConfig {
    /// Number of neighbours to average.
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig { k: 5 }
    }
}

/// k-nearest-neighbour regressor.
#[derive(Debug, Clone, Default)]
pub struct KnnRegressor {
    config: KnnConfig,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    dimension: Option<usize>,
}

impl KnnRegressor {
    /// Creates an unfitted regressor with the given configuration.
    pub fn new(config: KnnConfig) -> Self {
        KnnRegressor {
            config,
            ..Default::default()
        }
    }

    /// Creates an unfitted regressor averaging `k` neighbours.
    pub fn with_k(k: usize) -> Self {
        KnnRegressor::new(KnnConfig { k })
    }

    fn check_dimension(&self, x: &[f64]) -> Result<()> {
        match self.dimension {
            None => Err(ModelError::NotFitted),
            Some(d) if d == x.len() => Ok(()),
            Some(d) => Err(ModelError::DimensionMismatch {
                expected: d,
                actual: x.len(),
            }),
        }
    }
}

impl SurrogateModel for KnnRegressor {
    fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<()> {
        let dim = validate_training_set(xs, ys)?;
        self.dimension = Some(dim);
        self.xs = xs.to_vec();
        self.ys = ys.to_vec();
        Ok(())
    }

    fn update(&mut self, x: &[f64], y: f64) -> Result<()> {
        self.check_dimension(x)?;
        if !y.is_finite() || x.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::NonFiniteInput);
        }
        self.xs.push(x.to_vec());
        self.ys.push(y);
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> Result<Prediction> {
        self.check_dimension(x)?;
        let mut indexed: Vec<(f64, usize)> = self
            .xs
            .iter()
            .enumerate()
            .map(|(i, xi)| {
                (
                    squared_distance(xi, x).expect("dimension already validated"),
                    i,
                )
            })
            .collect();
        indexed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let k = self.config.k.max(1).min(indexed.len());
        let neighbours: Vec<f64> = indexed[..k].iter().map(|&(_, i)| self.ys[i]).collect();
        let summary = Summary::from_slice(&neighbours);
        Ok(Prediction::new(summary.mean, summary.variance))
    }

    fn predict_batch(&self, inputs: &[&[f64]]) -> Result<Vec<Prediction>> {
        // Each neighbour search scans the full training set; batches are
        // evaluated in parallel with order-preserving write-back.
        inputs.par_iter().map(|x| self.predict(x)).collect()
    }

    fn observation_count(&self) -> usize {
        self.ys.len()
    }

    fn dimension(&self) -> Option<usize> {
        self.dimension
    }
}

impl ActiveSurrogate for KnnRegressor {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbour_recovers_local_structure() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let mut knn = KnnRegressor::with_k(3);
        knn.fit(&xs, &ys).unwrap();
        assert!((knn.predict(&[2.0]).unwrap().mean - 1.0).abs() < 1e-12);
        assert!((knn.predict(&[17.0]).unwrap().mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn variance_reflects_neighbour_disagreement() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 6.0, 2.0, 6.0, 2.0];
        let mut knn = KnnRegressor::with_k(3);
        knn.fit(&xs, &ys).unwrap();
        let quiet = knn.predict(&[1.0]).unwrap().variance;
        let noisy = knn.predict(&[7.0]).unwrap().variance;
        assert!(noisy > quiet);
    }

    #[test]
    fn update_adds_neighbours() {
        let xs = vec![vec![0.0], vec![10.0]];
        let ys = vec![0.0, 10.0];
        let mut knn = KnnRegressor::with_k(1);
        knn.fit(&xs, &ys).unwrap();
        knn.update(&[5.0], 5.0).unwrap();
        assert!((knn.predict(&[5.1]).unwrap().mean - 5.0).abs() < 1e-12);
        assert_eq!(knn.observation_count(), 3);
    }

    #[test]
    fn k_larger_than_dataset_uses_all_points() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![2.0, 4.0];
        let mut knn = KnnRegressor::with_k(10);
        knn.fit(&xs, &ys).unwrap();
        assert!((knn.predict(&[0.5]).unwrap().mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn errors_before_fit() {
        let knn = KnnRegressor::with_k(3);
        assert_eq!(knn.predict(&[0.0]).unwrap_err(), ModelError::NotFitted);
    }
}
