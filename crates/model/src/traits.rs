//! Model traits: surrogate regression and active-learning scoring.

use crate::Result;

/// A posterior-predictive summary at one input point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predictive mean.
    pub mean: f64,
    /// Predictive variance (always non-negative).
    pub variance: f64,
}

impl Prediction {
    /// Creates a prediction, clamping the variance at zero.
    pub fn new(mean: f64, variance: f64) -> Self {
        Prediction {
            mean,
            variance: variance.max(0.0),
        }
    }

    /// Predictive standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// A regression model that predicts a scalar target with uncertainty and can
/// be updated one observation at a time.
///
/// The incremental [`update`](SurrogateModel::update) is the operation the
/// active-learning loop performs at every iteration; models that cannot
/// update incrementally (such as the Gaussian process) simply refit.
pub trait SurrogateModel: std::fmt::Debug {
    /// Fits the model from scratch on an initial training set of row views.
    ///
    /// The rows are borrowed (typically gathered from a flat
    /// `FeatureMatrix` pool); models copy what they need into their own flat
    /// storage, so no caller ever materializes a `Vec<Vec<f64>>` for
    /// training. Use [`crate::row_views`] to adapt nested data at the call
    /// site.
    ///
    /// # Errors
    ///
    /// Returns an error when the data are empty, inconsistently shaped, or
    /// contain non-finite values.
    fn fit(&mut self, xs: &[&[f64]], ys: &[f64]) -> Result<()>;

    /// Incorporates one new observation `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns an error when the model has not been fitted or `x` has the
    /// wrong dimensionality.
    fn update(&mut self, x: &[f64], y: f64) -> Result<()>;

    /// Posterior-predictive mean and variance at `x`.
    ///
    /// # Errors
    ///
    /// Returns an error when the model has not been fitted or `x` has the
    /// wrong dimensionality.
    fn predict(&self, x: &[f64]) -> Result<Prediction>;

    /// Posterior-predictive summaries for a batch of row views.
    ///
    /// Must agree with [`predict`](SurrogateModel::predict) applied
    /// point-by-point; the default implementation does exactly that. Models
    /// with exploitable structure (such as the dynamic tree) override it to
    /// share per-model work across the batch and evaluate rows in parallel.
    ///
    /// # Determinism contract
    ///
    /// Overrides that parallelize **must** produce bit-identical results
    /// regardless of the worker-thread count: write results back by index
    /// and keep every floating-point accumulation in a fixed,
    /// thread-independent order. The experiment stack's reproducibility
    /// guarantees (golden reports, sharded-campaign merge equality, the
    /// `batch_consistency` suite) all lean on this; the same rule applies
    /// to parallel [`fit`](SurrogateModel::fit) /
    /// [`update`](SurrogateModel::update) implementations, which the
    /// dynamic tree realizes with per-`(seed, observation, particle)`
    /// derived RNG streams.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    fn predict_batch(&self, inputs: &[&[f64]]) -> Result<Vec<Prediction>> {
        inputs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of training observations the model currently holds.
    fn observation_count(&self) -> usize;

    /// Input dimensionality, or `None` before fitting.
    fn dimension(&self) -> Option<usize>;

    /// Serializes the complete trained state as a canonical-JSON snapshot
    /// that [`crate::snapshot::restore_snapshot`] turns back into a model
    /// whose every subsequent output (predictions, scores, RNG draws) is
    /// bit-identical to the original's.
    ///
    /// Floating-point state is hex-bit-encoded (see [`crate::snapshot`]) so
    /// the round-trip never loses a ULP. The default implementation refuses:
    /// only the six [`crate::SurrogateSpec`] families opt in.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ModelError::Snapshot`] when the model does not
    /// support snapshotting or is not in a serializable state.
    fn snapshot(&self) -> Result<crate::snapshot::Snapshot> {
        Err(crate::ModelError::Snapshot(
            "model family does not support snapshots".to_string(),
        ))
    }
}

/// A surrogate model that can score how useful it would be to observe a
/// candidate point next (§3.3 of the paper).
///
/// Both criteria are formulated so that **larger scores are better**.
pub trait ActiveSurrogate: SurrogateModel {
    /// MacKay's Active Learning–MacKay (ALM) criterion: the predictive
    /// variance at the candidate. Candidates where the model is most
    /// uncertain score highest.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    fn alm_score(&self, candidate: &[f64]) -> Result<f64> {
        Ok(self.predict(candidate)?.variance)
    }

    /// Scores many candidate row views with the ALM criterion.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    fn alm_scores(&self, candidates: &[&[f64]]) -> Result<Vec<f64>> {
        Ok(self
            .predict_batch(candidates)?
            .into_iter()
            .map(|p| p.variance)
            .collect())
    }

    /// Cohn's Active Learning–Cohn (ALC) criterion: the expected reduction in
    /// the *average* predictive variance over a reference set if the
    /// candidate were observed next. This is the criterion the paper uses,
    /// because it handles heteroskedastic spaces more robustly (§3.3).
    ///
    /// The default implementation is a generic finite approximation: it
    /// assumes observing the candidate mostly improves predictions near the
    /// candidate, weighting each reference point's predictive variance by an
    /// inverse-distance kernel (observing the candidate can at best halve
    /// the variance of nearby reference predictions; far points are barely
    /// affected). Models with structure (such as the dynamic tree) override
    /// this with a sharper estimate.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    fn alc_score(&self, candidate: &[f64], reference: &[&[f64]]) -> Result<f64> {
        if reference.is_empty() {
            return self.alm_score(candidate);
        }
        let mut total = 0.0;
        for r in reference {
            let pred = self.predict(r)?;
            let dist2: f64 = r
                .iter()
                .zip(candidate)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            let proximity = 1.0 / (1.0 + dist2);
            total += 0.5 * proximity * pred.variance;
        }
        Ok(total / reference.len() as f64)
    }

    /// Scores many candidate row views with the ALC criterion against a
    /// shared reference set.
    ///
    /// The default implementation computes the same values as
    /// [`alc_score`](ActiveSurrogate::alc_score) applied per candidate, but
    /// predicts the reference set **once** through
    /// [`predict_batch`](SurrogateModel::predict_batch) instead of
    /// re-predicting it for every candidate — for a model with an `O(n²)`
    /// predictor (the Gaussian process) this turns an `O(|C|·|R|·n²)`
    /// acquisition step into `O(|R|·n² + |C|·|R|·d)`. Models with
    /// exploitable structure (such as the dynamic tree) override it
    /// entirely.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    fn alc_scores(&self, candidates: &[&[f64]], reference: &[&[f64]]) -> Result<Vec<f64>> {
        if reference.is_empty() {
            return self.alm_scores(candidates);
        }
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        let ref_vars: Vec<f64> = self
            .predict_batch(reference)?
            .into_iter()
            .map(|p| p.variance)
            .collect();
        Ok(candidates
            .iter()
            .map(|candidate| {
                let mut total = 0.0;
                for (r, &ref_var) in reference.iter().zip(&ref_vars) {
                    let dist2: f64 = r
                        .iter()
                        .zip(*candidate)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    let proximity = 1.0 / (1.0 + dist2);
                    total += 0.5 * proximity * ref_var;
                }
                total / reference.len() as f64
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelError;

    /// Minimal model used to exercise the default trait implementations.
    #[derive(Debug, Default)]
    struct FlatModel {
        n: usize,
        variance: f64,
    }

    impl SurrogateModel for FlatModel {
        fn fit(&mut self, xs: &[&[f64]], _ys: &[f64]) -> Result<()> {
            self.n = xs.len();
            Ok(())
        }
        fn update(&mut self, _x: &[f64], _y: f64) -> Result<()> {
            self.n += 1;
            Ok(())
        }
        fn predict(&self, x: &[f64]) -> Result<Prediction> {
            if x.is_empty() {
                return Err(ModelError::NotFitted);
            }
            // Variance grows with distance from the origin, to make the ALM
            // ordering observable.
            let d2: f64 = x.iter().map(|v| v * v).sum();
            Ok(Prediction::new(0.0, self.variance + d2))
        }
        fn observation_count(&self) -> usize {
            self.n
        }
        fn dimension(&self) -> Option<usize> {
            Some(1)
        }
    }

    impl ActiveSurrogate for FlatModel {}

    #[test]
    fn prediction_clamps_negative_variance() {
        let p = Prediction::new(1.0, -0.5);
        assert_eq!(p.variance, 0.0);
        assert_eq!(p.std_dev(), 0.0);
    }

    #[test]
    fn alm_prefers_the_most_uncertain_candidate() {
        let model = FlatModel {
            n: 0,
            variance: 0.1,
        };
        let near = model.alm_score(&[0.1]).unwrap();
        let far = model.alm_score(&[3.0]).unwrap();
        assert!(far > near);
    }

    #[test]
    fn alc_with_empty_reference_falls_back_to_alm() {
        let model = FlatModel {
            n: 0,
            variance: 0.2,
        };
        let alm = model.alm_score(&[1.0]).unwrap();
        let alc = model.alc_score(&[1.0], &[]).unwrap();
        assert_eq!(alm, alc);
    }

    #[test]
    fn alc_scores_candidates_near_uncertain_references_higher() {
        let model = FlatModel {
            n: 0,
            variance: 0.0,
        };
        // Reference point far from the origin has high variance; a candidate
        // near it should score higher than one near the origin.
        let reference: Vec<&[f64]> = vec![&[3.0]];
        let near_ref = model.alc_score(&[2.9], &reference).unwrap();
        let far_ref = model.alc_score(&[0.0], &reference).unwrap();
        assert!(near_ref > far_ref);
    }

    #[test]
    fn default_batch_implementations_agree_with_single_point() {
        let model = FlatModel {
            n: 0,
            variance: 0.3,
        };
        let points: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 / 2.0]).collect();
        let views: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
        let batch = model.predict_batch(&views).unwrap();
        let alm = model.alm_scores(&views).unwrap();
        let alc = model.alc_scores(&views, &views[..2]).unwrap();
        for (i, view) in views.iter().enumerate() {
            assert_eq!(batch[i], model.predict(view).unwrap());
            assert_eq!(alm[i], model.alm_score(view).unwrap());
            assert_eq!(alc[i], model.alc_score(view, &views[..2]).unwrap());
        }
    }
}
