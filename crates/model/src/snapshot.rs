//! Bit-exact JSON snapshot codecs for trained surrogates.
//!
//! A snapshot is the *full* trained state of a model — training rows,
//! weights, factorizations, arena columns, raw RNG words — rendered as
//! canonical [`JsonValue`] so it can ride the same ledger writers as every
//! other durable artifact in the workspace. The contract is stronger than
//! "round-trips approximately": a model restored by [`restore_snapshot`]
//! must produce **bit-identical** predictions, acquisition scores, and
//! (for the stochastic dynamic tree) RNG draws from the next operation
//! onward. The warm-start store (`alic_core::warmstore`) leans on this to
//! seed new tuning sessions from previously trained surrogates without
//! perturbing any determinism suite.
//!
//! # Why floats are hex strings
//!
//! The canonical JSON writer renders numbers as shortest-round-trip
//! decimals but rejects non-finite values, and a decimal round-trip through
//! a hand-rolled parser is the classic source of last-ULP drift. Snapshot
//! codecs therefore never store an `f64` as a JSON number: every float is
//! `f64::to_bits` rendered as 16 lowercase hex digits, and bulk arrays pack
//! one value per 16-character chunk of a single string. `u32` columns pack
//! as 8-digit chunks, and `u64` scalars (seeds) as 16-digit strings — the
//! same convention session checkpoints already use for seeds.
//!
//! Counts and small integers (observation counts, dimensions, array
//! lengths) stay plain JSON numbers; they are exact below 2⁵³ by
//! construction.

use std::fmt::Write as _;

use alic_data::io::JsonValue;

use crate::baseline::ConstantMean;
use crate::cart::RegressionTree;
use crate::dynatree::DynaTree;
use crate::gp::GaussianProcess;
use crate::knn::KnnRegressor;
use crate::sgp::SparseGaussianProcess;
use crate::traits::ActiveSurrogate;
use crate::{ModelError, Result};

/// A serialized trained model (canonical JSON with hex-bit-encoded floats).
pub type Snapshot = JsonValue;

/// Schema tag every model snapshot carries.
pub const SNAPSHOT_SCHEMA: &str = "alic-model-snapshot/v1";

/// The family name recorded in a snapshot (`"gp"`, `"dynatree"`, …) —
/// matches [`crate::SurrogateSpec::name`].
///
/// # Errors
///
/// Returns [`ModelError::Snapshot`] when the field is absent or not a
/// string.
pub fn snapshot_family(doc: &JsonValue) -> Result<&str> {
    get_str(doc, "family")
}

/// Rebuilds a boxed model from a snapshot produced by
/// [`crate::SurrogateModel::snapshot`], dispatching on the embedded family
/// tag. The restored model continues bit-identically to the one that was
/// serialized.
///
/// # Errors
///
/// Returns [`ModelError::Snapshot`] for an unknown schema or family, or for
/// structurally damaged state.
pub fn restore_snapshot(doc: &JsonValue) -> Result<Box<dyn ActiveSurrogate + Send>> {
    let schema = get_str(doc, "schema")?;
    if schema != SNAPSHOT_SCHEMA {
        return Err(err(format!(
            "schema {schema:?} (expected {SNAPSHOT_SCHEMA:?})"
        )));
    }
    match get_str(doc, "family")? {
        "dynatree" => Ok(Box::new(DynaTree::from_snapshot(doc)?)),
        "cart" => Ok(Box::new(RegressionTree::from_snapshot(doc)?)),
        "gp" => Ok(Box::new(GaussianProcess::from_snapshot(doc)?)),
        "sgp" => Ok(Box::new(SparseGaussianProcess::from_snapshot(doc)?)),
        "knn" => Ok(Box::new(KnnRegressor::from_snapshot(doc)?)),
        "mean" => Ok(Box::new(ConstantMean::from_snapshot(doc)?)),
        other => Err(err(format!("unknown model family {other:?}"))),
    }
}

pub(crate) fn err(msg: impl Into<String>) -> ModelError {
    ModelError::Snapshot(msg.into())
}

/// The common leading fields of every family's snapshot object.
pub(crate) fn header(family: &str) -> Vec<(String, JsonValue)> {
    vec![
        (
            "schema".to_string(),
            JsonValue::String(SNAPSHOT_SCHEMA.to_string()),
        ),
        ("family".to_string(), JsonValue::String(family.to_string())),
    ]
}

pub(crate) fn num(n: usize) -> JsonValue {
    JsonValue::Number(n as f64)
}

pub(crate) fn hex_u64(x: u64) -> JsonValue {
    JsonValue::String(format!("{x:016x}"))
}

pub(crate) fn hex_f64(x: f64) -> JsonValue {
    hex_u64(x.to_bits())
}

pub(crate) fn hex_f64s<I: IntoIterator<Item = f64>>(values: I) -> JsonValue {
    let mut out = String::new();
    for v in values {
        write!(out, "{:016x}", v.to_bits()).expect("writing to a String cannot fail");
    }
    JsonValue::String(out)
}

pub(crate) fn hex_u32s<I: IntoIterator<Item = u32>>(values: I) -> JsonValue {
    let mut out = String::new();
    for v in values {
        write!(out, "{v:08x}").expect("writing to a String cannot fail");
    }
    JsonValue::String(out)
}

/// `None` → JSON null, `Some(x)` → hex-bit string.
pub(crate) fn opt_hex_f64(x: Option<f64>) -> JsonValue {
    match x {
        None => JsonValue::Null,
        Some(v) => hex_f64(v),
    }
}

pub(crate) fn get<'a>(doc: &'a JsonValue, name: &str) -> Result<&'a JsonValue> {
    doc.field(name)
        .map_err(|e| err(format!("field {name}: {e}")))
}

pub(crate) fn get_str<'a>(doc: &'a JsonValue, name: &str) -> Result<&'a str> {
    get(doc, name)?
        .as_str()
        .map_err(|e| err(format!("field {name}: {e}")))
}

pub(crate) fn get_usize(doc: &JsonValue, name: &str) -> Result<usize> {
    get(doc, name)?
        .as_usize()
        .map_err(|e| err(format!("field {name}: {e}")))
}

pub(crate) fn get_array<'a>(doc: &'a JsonValue, name: &str) -> Result<&'a [JsonValue]> {
    get(doc, name)?
        .as_array()
        .map_err(|e| err(format!("field {name}: {e}")))
}

fn parse_hex_u64(name: &str, chunk: &str) -> Result<u64> {
    u64::from_str_radix(chunk, 16)
        .map_err(|_| err(format!("field {name}: bad hex chunk {chunk:?}")))
}

pub(crate) fn get_hex_u64(doc: &JsonValue, name: &str) -> Result<u64> {
    let text = get_str(doc, name)?;
    if text.len() != 16 {
        return Err(err(format!("field {name}: expected 16 hex digits")));
    }
    parse_hex_u64(name, text)
}

pub(crate) fn get_hex_f64(doc: &JsonValue, name: &str) -> Result<f64> {
    Ok(f64::from_bits(get_hex_u64(doc, name)?))
}

pub(crate) fn get_opt_hex_f64(doc: &JsonValue, name: &str) -> Result<Option<f64>> {
    let value = get(doc, name)?;
    if value.is_null() {
        return Ok(None);
    }
    Ok(Some(f64::from_bits(get_hex_u64(doc, name)?)))
}

pub(crate) fn decode_hex_f64s(name: &str, text: &str) -> Result<Vec<f64>> {
    if !text.len().is_multiple_of(16) || !text.is_ascii() {
        return Err(err(format!("field {name}: malformed f64 hex column")));
    }
    let mut out = Vec::with_capacity(text.len() / 16);
    for chunk in text.as_bytes().chunks_exact(16) {
        let chunk = std::str::from_utf8(chunk).expect("ascii checked above");
        out.push(f64::from_bits(parse_hex_u64(name, chunk)?));
    }
    Ok(out)
}

pub(crate) fn get_hex_f64s(doc: &JsonValue, name: &str) -> Result<Vec<f64>> {
    decode_hex_f64s(name, get_str(doc, name)?)
}

pub(crate) fn decode_hex_u32s(name: &str, text: &str) -> Result<Vec<u32>> {
    if !text.len().is_multiple_of(8) || !text.is_ascii() {
        return Err(err(format!("field {name}: malformed u32 hex column")));
    }
    let mut out = Vec::with_capacity(text.len() / 8);
    for chunk in text.as_bytes().chunks_exact(8) {
        let chunk = std::str::from_utf8(chunk).expect("ascii checked above");
        out.push(
            u32::from_str_radix(chunk, 16)
                .map_err(|_| err(format!("field {name}: bad hex chunk {chunk:?}")))?,
        );
    }
    Ok(out)
}

pub(crate) fn get_hex_u32s(doc: &JsonValue, name: &str) -> Result<Vec<u32>> {
    decode_hex_u32s(name, get_str(doc, name)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_f64_columns_round_trip_every_bit_pattern() {
        let values = [
            0.0,
            -0.0,
            1.0,
            -1.5,
            f64::MIN_POSITIVE,
            f64::MAX,
            1e-300,
            std::f64::consts::PI,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        let encoded = hex_f64s(values.iter().copied());
        let text = encoded.as_str().unwrap();
        let decoded = decode_hex_f64s("t", text).unwrap();
        assert_eq!(decoded.len(), values.len());
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn hex_u32_columns_round_trip() {
        let values = [0u32, 1, u32::MAX, u32::MAX - 1, 0xDEAD_BEEF];
        let encoded = hex_u32s(values.iter().copied());
        let decoded = decode_hex_u32s("t", encoded.as_str().unwrap()).unwrap();
        assert_eq!(decoded, values);
    }

    #[test]
    fn malformed_columns_are_structured_errors() {
        assert!(decode_hex_f64s("t", "0123").is_err());
        assert!(decode_hex_f64s("t", "zzzzzzzzzzzzzzzz").is_err());
        assert!(decode_hex_u32s("t", "123").is_err());
        let doc = JsonValue::Object(vec![("seed".to_string(), hex_u64(7))]);
        assert_eq!(get_hex_u64(&doc, "seed").unwrap(), 7);
        assert!(get_hex_u64(&doc, "missing").is_err());
    }

    #[test]
    fn every_family_round_trips_bit_identically() {
        let xs: Vec<Vec<f64>> = (0..24)
            .map(|i| vec![i as f64 / 23.0, (i % 5) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).sin() + 0.1 * x[1]).collect();
        let views = crate::row_views(&xs);
        for name in crate::SurrogateSpec::names() {
            let mut original = crate::SurrogateSpec::from_name(name).unwrap().build(7);
            original.fit(&views, &ys).unwrap();
            let text = original.snapshot().unwrap().to_json_string().unwrap();
            let mut restored = restore_snapshot(&JsonValue::parse(&text).unwrap()).unwrap();
            // Identical predictions now, and still identical after both
            // sides take the same additional observations.
            for step in 0..6 {
                let x = [0.1 + 0.15 * step as f64, (step % 3) as f64];
                assert_eq!(
                    original.predict(&x).unwrap(),
                    restored.predict(&x).unwrap(),
                    "family {name}, step {step}"
                );
                let y = (3.0 * x[0]).sin() + 0.1 * x[1] + 0.01 * step as f64;
                original.update(&x, y).unwrap();
                restored.update(&x, y).unwrap();
            }
        }
    }

    #[test]
    fn restore_rejects_unknown_schema_and_family() {
        let bad_schema = JsonValue::Object(vec![
            ("schema".to_string(), JsonValue::String("bogus/v9".into())),
            ("family".to_string(), JsonValue::String("gp".into())),
        ]);
        assert!(restore_snapshot(&bad_schema).is_err());
        let mut fields = header("martian");
        fields.push(("count".to_string(), num(0)));
        assert!(restore_snapshot(&JsonValue::Object(fields)).is_err());
    }
}
