//! Static CART-style regression tree.
//!
//! This is the classical decision-tree regressor of Breiman et al. that the
//! dynamic tree generalizes (§3.2: "The static model used within the dynamic
//! tree framework is a traditional decision tree for regression
//! applications"). It is built once by greedy variance-reduction splitting
//! and serves both as a standalone baseline model and as a reference point
//! for the dynamic tree's behaviour in tests.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use alic_data::io::JsonValue;

use crate::leaf::{LeafPrior, LeafStats};
use crate::snapshot::{self, Snapshot};
use crate::traits::{ActiveSurrogate, Prediction, SurrogateModel};
use crate::{validate_training_set, ModelError, Result};

/// Configuration of the static regression tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CartConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of observations required in each child of a split.
    pub min_leaf: usize,
    /// Minimum relative variance reduction for a split to be accepted.
    pub min_gain: f64,
}

impl Default for CartConfig {
    fn default() -> Self {
        CartConfig {
            max_depth: 12,
            min_leaf: 3,
            min_gain: 1e-4,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        stats: LeafStats,
    },
    Split {
        dimension: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Greedy variance-reduction regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    config: CartConfig,
    nodes: Vec<Node>,
    prior: LeafPrior,
    dimension: Option<usize>,
    observations: usize,
}

impl RegressionTree {
    /// Creates an unfitted tree with the given configuration.
    pub fn new(config: CartConfig) -> Self {
        RegressionTree {
            config,
            nodes: Vec::new(),
            prior: LeafPrior::default(),
            dimension: None,
            observations: 0,
        }
    }

    /// Creates an unfitted tree with default configuration.
    pub fn with_defaults() -> Self {
        RegressionTree::new(CartConfig::default())
    }

    /// Number of leaves in the fitted tree (zero before fitting).
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Depth of the fitted tree (zero before fitting).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], index: usize) -> usize {
            match &nodes[index] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    fn build(&mut self, xs: &[&[f64]], ys: &[f64], indices: Vec<usize>, depth: usize) -> usize {
        let stats = LeafStats::from_targets(&indices.iter().map(|&i| ys[i]).collect::<Vec<_>>());
        let node_variance = variance_of(&indices, ys);
        if depth >= self.config.max_depth
            || indices.len() < 2 * self.config.min_leaf
            || node_variance <= 1e-18
        {
            self.nodes.push(Node::Leaf { stats });
            return self.nodes.len() - 1;
        }
        // Greedy best split over all dimensions and midpoints. (`xs` is
        // indexed by example, not by `d`; the lint misreads the loop.)
        let dim = xs[0].len();
        let mut best: Option<(usize, f64, f64)> = None; // (dimension, threshold, gain)
        #[allow(clippy::needless_range_loop)]
        for d in 0..dim {
            let mut values: Vec<f64> = indices.iter().map(|&i| xs[i][d]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            for w in values.windows(2) {
                let threshold = 0.5 * (w[0] + w[1]);
                let (left, right): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| xs[i][d] <= threshold);
                if left.len() < self.config.min_leaf || right.len() < self.config.min_leaf {
                    continue;
                }
                let weighted = (left.len() as f64 * variance_of(&left, ys)
                    + right.len() as f64 * variance_of(&right, ys))
                    / indices.len() as f64;
                let gain = node_variance - weighted;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((d, threshold, gain));
                }
            }
        }
        match best {
            Some((dimension, threshold, gain))
                if gain > self.config.min_gain * node_variance.max(1e-12) =>
            {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| xs[i][dimension] <= threshold);
                let placeholder = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    stats: LeafStats::new(),
                });
                let left = self.build(xs, ys, left_idx, depth + 1);
                let right = self.build(xs, ys, right_idx, depth + 1);
                self.nodes[placeholder] = Node::Split {
                    dimension,
                    threshold,
                    left,
                    right,
                };
                placeholder
            }
            _ => {
                self.nodes.push(Node::Leaf { stats });
                self.nodes.len() - 1
            }
        }
    }

    /// Rebuilds a tree from a [`SurrogateModel::snapshot`] document. Nodes
    /// are stored as parallel columns with a kind discriminator (0 = leaf,
    /// 1 = split); non-applicable columns hold zeros.
    pub(crate) fn from_snapshot(doc: &JsonValue) -> Result<Self> {
        let kinds = snapshot::get_hex_u32s(doc, "node_kind")?;
        let dims = snapshot::get_hex_u32s(doc, "node_dimension")?;
        let thresholds = snapshot::get_hex_f64s(doc, "node_threshold")?;
        let lefts = snapshot::get_hex_u32s(doc, "node_left")?;
        let rights = snapshot::get_hex_u32s(doc, "node_right")?;
        let counts = snapshot::get_hex_u32s(doc, "leaf_count")?;
        let means = snapshot::get_hex_f64s(doc, "leaf_mean")?;
        let m2s = snapshot::get_hex_f64s(doc, "leaf_m2")?;
        let mins = snapshot::get_hex_f64s(doc, "leaf_min")?;
        let maxs = snapshot::get_hex_f64s(doc, "leaf_max")?;
        let n = kinds.len();
        for (name, len) in [
            ("node_dimension", dims.len()),
            ("node_threshold", thresholds.len()),
            ("node_left", lefts.len()),
            ("node_right", rights.len()),
            ("leaf_count", counts.len()),
            ("leaf_mean", means.len()),
            ("leaf_m2", m2s.len()),
            ("leaf_min", mins.len()),
            ("leaf_max", maxs.len()),
        ] {
            if len != n {
                return Err(snapshot::err(format!(
                    "field {name}: {len} entries for {n} nodes"
                )));
            }
        }
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            nodes.push(match kinds[i] {
                0 => Node::Leaf {
                    stats: LeafStats::from_parts(
                        counts[i] as usize,
                        means[i],
                        m2s[i],
                        mins[i],
                        maxs[i],
                    ),
                },
                1 => {
                    let (left, right) = (lefts[i] as usize, rights[i] as usize);
                    if left >= n || right >= n {
                        return Err(snapshot::err(format!("node {i}: child out of range")));
                    }
                    Node::Split {
                        dimension: dims[i] as usize,
                        threshold: thresholds[i],
                        left,
                        right,
                    }
                }
                other => return Err(snapshot::err(format!("node {i}: unknown kind {other}"))),
            });
        }
        let dimension = match snapshot::get(doc, "dimension")? {
            JsonValue::Null => None,
            _ => Some(snapshot::get_usize(doc, "dimension")?),
        };
        Ok(RegressionTree {
            config: CartConfig {
                max_depth: snapshot::get_usize(doc, "max_depth")?,
                min_leaf: snapshot::get_usize(doc, "min_leaf")?,
                min_gain: snapshot::get_hex_f64(doc, "min_gain")?,
            },
            nodes,
            prior: LeafPrior {
                mean: snapshot::get_hex_f64(doc, "prior_mean")?,
                kappa: snapshot::get_hex_f64(doc, "prior_kappa")?,
                shape: snapshot::get_hex_f64(doc, "prior_shape")?,
                scale: snapshot::get_hex_f64(doc, "prior_scale")?,
            },
            dimension,
            observations: snapshot::get_usize(doc, "observations")?,
        })
    }

    fn leaf_for(&self, x: &[f64]) -> Result<&LeafStats> {
        if self.nodes.is_empty() {
            return Err(ModelError::NotFitted);
        }
        let mut index = 0;
        loop {
            match &self.nodes[index] {
                Node::Leaf { stats } => return Ok(stats),
                Node::Split {
                    dimension,
                    threshold,
                    left,
                    right,
                } => {
                    index = if x[*dimension] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn check_dimension(&self, x: &[f64]) -> Result<()> {
        match self.dimension {
            None => Err(ModelError::NotFitted),
            Some(d) if d == x.len() => Ok(()),
            Some(d) => Err(ModelError::DimensionMismatch {
                expected: d,
                actual: x.len(),
            }),
        }
    }
}

fn variance_of(indices: &[usize], ys: &[f64]) -> f64 {
    if indices.len() < 2 {
        return 0.0;
    }
    let mean = indices.iter().map(|&i| ys[i]).sum::<f64>() / indices.len() as f64;
    indices
        .iter()
        .map(|&i| (ys[i] - mean) * (ys[i] - mean))
        .sum::<f64>()
        / (indices.len() - 1) as f64
}

impl SurrogateModel for RegressionTree {
    fn fit(&mut self, xs: &[&[f64]], ys: &[f64]) -> Result<()> {
        let dim = validate_training_set(xs, ys)?;
        self.nodes.clear();
        self.dimension = Some(dim);
        self.observations = ys.len();
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let var = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / ys.len() as f64;
        self.prior = LeafPrior::weakly_informative(mean, (var * 0.25).max(1e-12));
        let indices: Vec<usize> = (0..ys.len()).collect();
        self.build(xs, ys, indices, 0);
        Ok(())
    }

    fn update(&mut self, x: &[f64], y: f64) -> Result<()> {
        // A static tree cannot restructure itself; the new observation is
        // absorbed into the leaf that contains it. (This limitation is
        // exactly why the dynamic tree exists.)
        self.check_dimension(x)?;
        crate::validate_observation(x, y)?;
        let mut index = 0;
        loop {
            match &mut self.nodes[index] {
                Node::Leaf { stats } => {
                    stats.push(y);
                    self.observations += 1;
                    return Ok(());
                }
                Node::Split {
                    dimension,
                    threshold,
                    left,
                    right,
                } => {
                    index = if x[*dimension] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn predict(&self, x: &[f64]) -> Result<Prediction> {
        self.check_dimension(x)?;
        let stats = self.leaf_for(x)?;
        let (mean, variance) = stats.predictive_mean_variance(&self.prior);
        Ok(Prediction::new(mean, variance))
    }

    fn predict_batch(&self, inputs: &[&[f64]]) -> Result<Vec<Prediction>> {
        // Tree traversals are independent; evaluate the batch in parallel
        // with order-preserving write-back.
        inputs.par_iter().map(|x| self.predict(x)).collect()
    }

    fn observation_count(&self) -> usize {
        self.observations
    }

    fn dimension(&self) -> Option<usize> {
        self.dimension
    }

    fn snapshot(&self) -> Result<Snapshot> {
        let n = self.nodes.len();
        let mut kinds = Vec::with_capacity(n);
        let mut dims = Vec::with_capacity(n);
        let mut thresholds = Vec::with_capacity(n);
        let mut lefts = Vec::with_capacity(n);
        let mut rights = Vec::with_capacity(n);
        let mut counts = Vec::with_capacity(n);
        let mut means = Vec::with_capacity(n);
        let mut m2s = Vec::with_capacity(n);
        let mut mins = Vec::with_capacity(n);
        let mut maxs = Vec::with_capacity(n);
        for node in &self.nodes {
            match node {
                Node::Leaf { stats } => {
                    let (count, mean, m2, min, max) = stats.parts();
                    kinds.push(0u32);
                    dims.push(0);
                    thresholds.push(0.0);
                    lefts.push(0);
                    rights.push(0);
                    counts.push(u32::try_from(count).map_err(|_| {
                        snapshot::err("leaf count exceeds the u32 snapshot column")
                    })?);
                    means.push(mean);
                    m2s.push(m2);
                    mins.push(min);
                    maxs.push(max);
                }
                Node::Split {
                    dimension,
                    threshold,
                    left,
                    right,
                } => {
                    kinds.push(1);
                    dims.push(*dimension as u32);
                    thresholds.push(*threshold);
                    lefts.push(*left as u32);
                    rights.push(*right as u32);
                    counts.push(0);
                    means.push(0.0);
                    m2s.push(0.0);
                    mins.push(0.0);
                    maxs.push(0.0);
                }
            }
        }
        let mut fields = snapshot::header("cart");
        fields.extend([
            (
                "max_depth".to_string(),
                snapshot::num(self.config.max_depth),
            ),
            ("min_leaf".to_string(), snapshot::num(self.config.min_leaf)),
            (
                "min_gain".to_string(),
                snapshot::hex_f64(self.config.min_gain),
            ),
            ("node_kind".to_string(), snapshot::hex_u32s(kinds)),
            ("node_dimension".to_string(), snapshot::hex_u32s(dims)),
            ("node_threshold".to_string(), snapshot::hex_f64s(thresholds)),
            ("node_left".to_string(), snapshot::hex_u32s(lefts)),
            ("node_right".to_string(), snapshot::hex_u32s(rights)),
            ("leaf_count".to_string(), snapshot::hex_u32s(counts)),
            ("leaf_mean".to_string(), snapshot::hex_f64s(means)),
            ("leaf_m2".to_string(), snapshot::hex_f64s(m2s)),
            ("leaf_min".to_string(), snapshot::hex_f64s(mins)),
            ("leaf_max".to_string(), snapshot::hex_f64s(maxs)),
            ("prior_mean".to_string(), snapshot::hex_f64(self.prior.mean)),
            (
                "prior_kappa".to_string(),
                snapshot::hex_f64(self.prior.kappa),
            ),
            (
                "prior_shape".to_string(),
                snapshot::hex_f64(self.prior.shape),
            ),
            (
                "prior_scale".to_string(),
                snapshot::hex_f64(self.prior.scale),
            ),
            (
                "dimension".to_string(),
                match self.dimension {
                    None => JsonValue::Null,
                    Some(d) => snapshot::num(d),
                },
            ),
            ("observations".to_string(), snapshot::num(self.observations)),
        ]);
        Ok(JsonValue::Object(fields))
    }
}

impl ActiveSurrogate for RegressionTree {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row_views;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // A step function: 1.0 below x = 0.5, 3.0 above.
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] <= 0.5 { 1.0 } else { 3.0 })
            .collect();
        (xs, ys)
    }

    #[test]
    fn learns_a_step_function() {
        let (xs, ys) = step_data();
        let mut tree = RegressionTree::with_defaults();
        tree.fit(&row_views(&xs), &ys).unwrap();
        assert!((tree.predict(&[0.2]).unwrap().mean - 1.0).abs() < 0.1);
        assert!((tree.predict(&[0.8]).unwrap().mean - 3.0).abs() < 0.1);
        assert!(tree.leaf_count() >= 2);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![5.0; 20];
        let mut tree = RegressionTree::with_defaults();
        tree.fit(&row_views(&xs), &ys).unwrap();
        assert_eq!(tree.leaf_count(), 1);
        assert!((tree.predict(&[7.5]).unwrap().mean - 5.0).abs() < 0.05);
    }

    #[test]
    fn respects_max_depth() {
        let (xs, ys) = step_data();
        let mut tree = RegressionTree::new(CartConfig {
            max_depth: 1,
            ..Default::default()
        });
        tree.fit(&row_views(&xs), &ys).unwrap();
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn update_shifts_leaf_predictions() {
        let (xs, ys) = step_data();
        let mut tree = RegressionTree::with_defaults();
        tree.fit(&row_views(&xs), &ys).unwrap();
        let before = tree.predict(&[0.2]).unwrap().mean;
        for _ in 0..200 {
            tree.update(&[0.2], 2.0).unwrap();
        }
        let after = tree.predict(&[0.2]).unwrap().mean;
        assert!(after > before, "leaf mean should move towards the new data");
        assert_eq!(tree.observation_count(), 40 + 200);
    }

    #[test]
    fn predict_before_fit_is_an_error() {
        let tree = RegressionTree::with_defaults();
        assert_eq!(tree.predict(&[1.0]).unwrap_err(), ModelError::NotFitted);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let (xs, ys) = step_data();
        let mut tree = RegressionTree::with_defaults();
        tree.fit(&row_views(&xs), &ys).unwrap();
        assert!(matches!(
            tree.predict(&[1.0, 2.0]),
            Err(ModelError::DimensionMismatch {
                expected: 1,
                actual: 2
            })
        ));
    }

    #[test]
    fn two_dimensional_interaction_is_partially_captured() {
        // y depends on both dimensions; check the tree differentiates the corners.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..15 {
            for j in 0..15 {
                let a = i as f64 / 14.0;
                let b = j as f64 / 14.0;
                xs.push(vec![a, b]);
                ys.push(if a > 0.5 && b > 0.5 { 4.0 } else { 1.0 });
            }
        }
        let mut tree = RegressionTree::with_defaults();
        tree.fit(&row_views(&xs), &ys).unwrap();
        assert!(tree.predict(&[0.9, 0.9]).unwrap().mean > 3.0);
        assert!(tree.predict(&[0.1, 0.9]).unwrap().mean < 2.0);
    }

    #[test]
    fn variance_is_higher_in_noisy_regions() {
        // Left half is quiet, right half is noisy.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            let x = i as f64 / 59.0;
            xs.push(vec![x]);
            if x <= 0.5 {
                ys.push(1.0 + 0.001 * (i % 3) as f64);
            } else {
                ys.push(3.0 + ((i % 7) as f64 - 3.0) * 0.5);
            }
        }
        let mut tree = RegressionTree::with_defaults();
        tree.fit(&row_views(&xs), &ys).unwrap();
        let quiet = tree.predict(&[0.25]).unwrap().variance;
        let noisy = tree.predict(&[0.75]).unwrap().variance;
        assert!(noisy > quiet);
    }
}
