//! Conjugate Gaussian leaf model.
//!
//! Every leaf of a (dynamic or static) regression tree models its targets as
//! draws from a Gaussian with unknown mean and variance under a
//! normal–inverse-gamma (NIG) prior. This gives, in closed form,
//!
//! * the posterior-predictive distribution of a new target (a Student-t),
//! * the log marginal likelihood of the targets in the leaf (used to weight
//!   the dynamic tree's stay/prune/grow moves), and
//! * the log predictive density of a single new observation (used as the
//!   particle weight during particle learning).

use serde::{Deserialize, Serialize};

use alic_stats::special::ln_gamma;
use alic_stats::summary::OnlineStats;

/// Normal–inverse-gamma prior shared by every leaf of a tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeafPrior {
    /// Prior mean of the leaf mean.
    pub mean: f64,
    /// Prior pseudo-observation count for the mean (`κ₀`).
    pub kappa: f64,
    /// Inverse-gamma shape (`a₀`).
    pub shape: f64,
    /// Inverse-gamma scale (`b₀`).
    pub scale: f64,
}

impl LeafPrior {
    /// A weakly informative prior centred on `mean` with a typical target
    /// variance of `variance`.
    pub fn weakly_informative(mean: f64, variance: f64) -> Self {
        let shape = 2.0;
        LeafPrior {
            mean,
            kappa: 0.1,
            shape,
            // E[σ²] = b / (a - 1) = variance  =>  b = variance (a - 1).
            scale: (variance.max(1e-12)) * (shape - 1.0),
        }
    }
}

impl Default for LeafPrior {
    fn default() -> Self {
        LeafPrior::weakly_informative(0.0, 1.0)
    }
}

/// Sufficient statistics of the targets currently assigned to a leaf.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LeafStats {
    stats: OnlineStats,
}

impl LeafStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        LeafStats {
            stats: OnlineStats::new(),
        }
    }

    /// Builds statistics from a slice of target values.
    pub fn from_targets(targets: &[f64]) -> Self {
        let mut leaf = LeafStats::new();
        for &y in targets {
            leaf.push(y);
        }
        leaf
    }

    /// Adds one target value.
    pub fn push(&mut self, y: f64) {
        self.stats.push(y);
    }

    /// Builds statistics directly from accumulator parts (`Σ(y−mean)²` as
    /// `m2`) — the dynamic tree's grow move computes child statistics with
    /// a two-pass sum instead of per-point online updates and materializes
    /// them through this.
    pub fn from_parts(count: usize, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        LeafStats {
            stats: OnlineStats::from_parts(count, mean, m2, min, max),
        }
    }

    /// The accumulator parts `(count, mean, m2, min, max)` in
    /// [`from_parts`](LeafStats::from_parts) order, so checkpointing codecs
    /// can round-trip a leaf bit-exactly.
    pub fn parts(&self) -> (usize, f64, f64, f64, f64) {
        (
            self.stats.count(),
            self.stats.mean(),
            self.stats.m2(),
            self.stats.min(),
            self.stats.max(),
        )
    }

    /// Number of targets in the leaf.
    pub fn count(&self) -> usize {
        self.stats.count()
    }

    /// Mean of the targets in the leaf (zero when empty).
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Sum of squared deviations from the mean.
    fn sum_sq_dev(&self) -> f64 {
        self.stats.variance() * (self.stats.count().saturating_sub(1)) as f64
    }

    /// `(Σy, Σy²)` recovered from the online statistics — the totals a
    /// split proposal needs to score the right child as `totals − left`.
    pub fn sum_and_sum_sq(&self) -> (f64, f64) {
        let n = self.count() as f64;
        let mean = self.mean();
        let sum = n * mean;
        (sum, self.sum_sq_dev() + sum * mean)
    }

    /// Posterior NIG parameters given `prior`.
    fn posterior(&self, prior: &LeafPrior) -> LeafPrior {
        let n = self.count() as f64;
        if n == 0.0 {
            return *prior;
        }
        let mean = self.mean();
        let kappa_n = prior.kappa + n;
        let mean_n = (prior.kappa * prior.mean + n * mean) / kappa_n;
        let shape_n = prior.shape + 0.5 * n;
        let scale_n = prior.scale
            + 0.5 * self.sum_sq_dev()
            + 0.5 * prior.kappa * n * (mean - prior.mean) * (mean - prior.mean) / kappa_n;
        LeafPrior {
            mean: mean_n,
            kappa: kappa_n,
            shape: shape_n,
            scale: scale_n,
        }
    }

    /// Posterior-predictive distribution of a new target: a Student-t with
    /// the returned `(mean, scale², degrees of freedom)`.
    pub fn posterior_predictive(&self, prior: &LeafPrior) -> (f64, f64, f64) {
        let post = self.posterior(prior);
        let df = 2.0 * post.shape;
        let scale_sq = post.scale * (post.kappa + 1.0) / (post.shape * post.kappa);
        (post.mean, scale_sq, df)
    }

    /// Posterior-predictive mean and *variance* of a new target.
    ///
    /// The variance of a Student-t with `df > 2` is `scale² · df / (df − 2)`;
    /// for `df ≤ 2` the scale² itself is returned as a conservative proxy.
    pub fn predictive_mean_variance(&self, prior: &LeafPrior) -> (f64, f64) {
        let (mean, scale_sq, df) = self.posterior_predictive(prior);
        let variance = if df > 2.0 {
            scale_sq * df / (df - 2.0)
        } else {
            scale_sq
        };
        (mean, variance)
    }

    /// Log marginal likelihood of the targets in this leaf under `prior`.
    pub fn log_marginal_likelihood(&self, prior: &LeafPrior) -> f64 {
        let n = self.count() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let post = self.posterior(prior);
        ln_gamma(post.shape) - ln_gamma(prior.shape) + prior.shape * prior.scale.ln()
            - post.shape * post.scale.ln()
            + 0.5 * (prior.kappa.ln() - post.kappa.ln())
            - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Log posterior-predictive density of a single new target `y`.
    pub fn log_predictive_density(&self, prior: &LeafPrior, y: f64) -> f64 {
        let (mean, scale_sq, df) = self.posterior_predictive(prior);
        let z = (y - mean) * (y - mean) / (df * scale_sq);
        ln_gamma(0.5 * (df + 1.0))
            - ln_gamma(0.5 * df)
            - 0.5 * (df * std::f64::consts::PI * scale_sq).ln()
            - 0.5 * (df + 1.0) * (1.0 + z).ln()
    }

    /// Merges another leaf's statistics into this one (used when pruning).
    pub fn merge(&mut self, other: &LeafStats) {
        self.stats.merge(&other.stats);
    }

    /// [`log_marginal_likelihood`](LeafStats::log_marginal_likelihood) with
    /// the `ln Γ` evaluations served from a precomputed [`LnGammaTable`].
    ///
    /// Bit-identical to the direct computation: the table stores values of
    /// the exact same `ln_gamma` at the exact same arguments.
    ///
    /// # Panics
    ///
    /// Panics if the table does not cover this leaf's count (see
    /// [`LnGammaTable::ensure`]).
    pub fn log_marginal_likelihood_with(&self, prior: &LeafPrior, table: &LnGammaTable) -> f64 {
        let n = self.count() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let post = self.posterior(prior);
        // `ln κ₀` and `ln κₙ` come from the table too: `κₙ = κ₀ + n` is the
        // same expression the table rows are built from, so the values are
        // bit-identical to computing the logarithms here.
        table.ln_gamma_shape(self.count()) - table.ln_gamma_shape(0)
            + prior.shape * prior.scale.ln()
            - post.shape * post.scale.ln()
            + 0.5 * (table.ln_kappa(0) - table.ln_kappa(self.count()))
            - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Computes the full set of derived per-leaf quantities the dynamic tree
    /// caches per node: predictive moments, log marginal likelihood and the
    /// observation-independent parts of the log predictive density.
    ///
    /// # Panics
    ///
    /// Panics if the table does not cover this leaf's count.
    pub fn moments(&self, prior: &LeafPrior, table: &LnGammaTable) -> LeafMoments {
        let n = self.count();
        // One posterior computation feeds the predictive moments, the
        // density constants *and* the marginal likelihood (same formula as
        // `log_marginal_likelihood_with`, which recomputes the posterior —
        // fused here because this runs once per leaf refresh on the update
        // hot path).
        let post = self.posterior(prior);
        let df = 2.0 * post.shape;
        let scale_sq = post.scale * (post.kappa + 1.0) / (post.shape * post.kappa);
        let variance = if df > 2.0 {
            scale_sq * df / (df - 2.0)
        } else {
            scale_sq
        };
        let lml = if n == 0 {
            0.0
        } else {
            table.ln_gamma_shape(n) - table.ln_gamma_shape(0) + prior.shape * prior.scale.ln()
                - post.shape * post.scale.ln()
                + 0.5 * (table.ln_kappa(0) - table.ln_kappa(n))
                - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
        };
        // ln Γ(½(df+1)) = ln Γ(shape_n + ½) and ln Γ(½ df) = ln Γ(shape_n):
        // both depend on the data only through the count, so they come from
        // the shared table.
        let density_const = table.ln_gamma_shape_plus_half(n)
            - table.ln_gamma_shape(n)
            - 0.5 * (df * std::f64::consts::PI * scale_sq).ln();
        LeafMoments {
            mean: post.mean,
            variance,
            lml,
            n_eff: n as f64 + prior.kappa,
            density_const,
            half_df_plus_one: 0.5 * (df + 1.0),
            inv_df_scale_sq: 1.0 / (df * scale_sq),
        }
    }
}

/// Cached per-leaf derived quantities of the dynamic tree.
///
/// Everything a scoring or particle-learning step needs from a leaf — the
/// Student-t predictive moments, the log marginal likelihood that weights
/// structural moves, and the observation-independent parts of the log
/// predictive density — is a pure function of the leaf's [`LeafStats`], the
/// shared [`LeafPrior`] and the shared [`LnGammaTable`]. The dynamic tree
/// keeps one `LeafMoments` per node, refreshed whenever the leaf's
/// statistics change, so the hot paths never recompute posteriors or
/// `ln Γ` terms.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LeafMoments {
    /// Posterior-predictive mean.
    pub mean: f64,
    /// Posterior-predictive variance.
    pub variance: f64,
    /// Log marginal likelihood of the leaf's targets.
    pub lml: f64,
    /// Effective observation count `n + κ₀` (the ALC shrinkage denominator
    /// is `n_eff + 1`).
    pub n_eff: f64,
    /// `ln Γ(½(df+1)) − ln Γ(½ df) − ½ ln(df π s²)`.
    density_const: f64,
    /// `½ (df + 1)`.
    half_df_plus_one: f64,
    /// `1 / (df s²)`.
    inv_df_scale_sq: f64,
}

impl LeafMoments {
    /// Log posterior-predictive density of a new target `y` — the particle
    /// weight of the resampling step, evaluated from cached constants with
    /// four flops and one `ln`.
    #[inline]
    pub fn log_density(&self, y: f64) -> f64 {
        let d = y - self.mean;
        self.density_const - self.half_df_plus_one * (1.0 + d * d * self.inv_df_scale_sq).ln()
    }
}

/// Memoized `ln Γ` evaluations at the only arguments the leaf model ever
/// needs.
///
/// Every `ln Γ` in the leaf posterior is evaluated at `a₀ + n/2` or
/// `a₀ + n/2 + ½` where `a₀` is the (fit-time frozen) prior shape and `n`
/// is a leaf count — an integer bounded by the total number of
/// observations. The dynamic tree keeps one table per model, extends it
/// once per update (serially, before the parallel phases read it), and
/// thereby removes every `ln Γ` evaluation from the per-particle hot path.
#[derive(Debug, Clone, Default)]
pub struct LnGammaTable {
    shape: f64,
    kappa: f64,
    /// `base[n] = ln Γ(shape + n/2)`.
    base: Vec<f64>,
    /// `half[n] = ln Γ(shape + n/2 + ½)`.
    half: Vec<f64>,
    /// `ln_kappa[n] = ln(κ₀ + n)` — not a `ln Γ`, but memoized by count for
    /// the same reason.
    ln_kappa: Vec<f64>,
}

impl LnGammaTable {
    /// Creates a table for the given prior's shape and `κ₀`, covering
    /// count 0.
    pub fn new(prior: &LeafPrior) -> Self {
        let mut table = LnGammaTable {
            shape: prior.shape,
            kappa: prior.kappa,
            base: Vec::new(),
            half: Vec::new(),
            ln_kappa: Vec::new(),
        };
        table.ensure(0);
        table
    }

    /// Extends the table to cover all counts `0..=max_count`.
    pub fn ensure(&mut self, max_count: usize) {
        while self.base.len() <= max_count {
            let n = self.base.len() as f64;
            // Same expression as `LeafStats::posterior`: shape_n = a₀ + n/2.
            let shape_n = self.shape + 0.5 * n;
            self.base.push(ln_gamma(shape_n));
            self.half.push(ln_gamma(shape_n + 0.5));
            self.ln_kappa.push((self.kappa + n).ln());
        }
    }

    /// Largest covered count.
    pub fn max_count(&self) -> usize {
        self.base.len().saturating_sub(1)
    }

    /// `ln Γ(a₀ + count/2)` — the posterior shape for a leaf of `count`
    /// observations.
    #[inline]
    pub fn ln_gamma_shape(&self, count: usize) -> f64 {
        self.base[count]
    }

    /// `ln Γ(a₀ + count/2 + ½)`.
    #[inline]
    pub fn ln_gamma_shape_plus_half(&self, count: usize) -> f64 {
        self.half[count]
    }

    /// `ln(κ₀ + count)` — the posterior `ln κₙ`.
    #[inline]
    pub fn ln_kappa(&self, count: usize) -> f64 {
        self.ln_kappa[count]
    }
}

/// Log marginal likelihood of a hypothetical leaf described by its raw sums
/// `(count, Σy, Σy²)` under `prior`.
///
/// This is the proposal-scoring fast path of the dynamic tree's grow move:
/// a candidate split partitions a leaf with three fused accumulators per
/// side instead of a running Welford update, and the likelihood is
/// evaluated straight from the sums with one data-dependent `ln` (all other
/// logarithms come from the table). The accepted split's *actual* child
/// statistics are still built with the numerically robust online update in
/// `ParticleTree::grow`; this function only ranks proposals, where the
/// (tiny, `Σy²`-cancellation-sized) difference from the Welford route is
/// statistically irrelevant.
pub fn log_marginal_likelihood_of_sums(
    count: usize,
    sum: f64,
    sum_sq: f64,
    prior: &LeafPrior,
    table: &LnGammaTable,
) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let n = count as f64;
    let mean = sum / n;
    let sum_sq_dev = (sum_sq - sum * mean).max(0.0);
    let kappa_n = prior.kappa + n;
    let shape_n = prior.shape + 0.5 * n;
    let scale_n = prior.scale
        + 0.5 * sum_sq_dev
        + 0.5 * prior.kappa * n * (mean - prior.mean) * (mean - prior.mean) / kappa_n;
    table.ln_gamma_shape(count) - table.ln_gamma_shape(0) + prior.shape * prior.scale.ln()
        - shape_n * scale_n.ln()
        + 0.5 * (table.ln_kappa(0) - table.ln_kappa(count))
        - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prior() -> LeafPrior {
        LeafPrior::weakly_informative(1.0, 0.25)
    }

    #[test]
    fn empty_leaf_predicts_the_prior() {
        let leaf = LeafStats::new();
        let (mean, var) = leaf.predictive_mean_variance(&prior());
        assert!((mean - 1.0).abs() < 1e-12);
        assert!(var > 0.0);
        assert_eq!(leaf.log_marginal_likelihood(&prior()), 0.0);
    }

    #[test]
    fn predictive_mean_approaches_sample_mean_with_data() {
        let targets: Vec<f64> = (0..50).map(|i| 3.0 + 0.01 * (i % 5) as f64).collect();
        let leaf = LeafStats::from_targets(&targets);
        let (mean, _) = leaf.predictive_mean_variance(&prior());
        assert!(
            (mean - leaf.mean()).abs() < 0.02,
            "mean {mean} vs {}",
            leaf.mean()
        );
    }

    #[test]
    fn predictive_variance_shrinks_with_more_data() {
        let few = LeafStats::from_targets(&[2.0, 2.1, 1.9]);
        let many = LeafStats::from_targets(
            &(0..60)
                .map(|i| 2.0 + 0.1 * ((i % 3) as f64 - 1.0))
                .collect::<Vec<_>>(),
        );
        let (_, var_few) = few.predictive_mean_variance(&prior());
        let (_, var_many) = many.predictive_mean_variance(&prior());
        assert!(var_many < var_few);
    }

    #[test]
    fn noisier_targets_have_larger_predictive_variance() {
        let quiet = LeafStats::from_targets(&[1.0, 1.01, 0.99, 1.0, 1.02, 0.98]);
        let noisy = LeafStats::from_targets(&[0.2, 1.8, 0.5, 1.5, 0.1, 1.9]);
        let (_, var_quiet) = quiet.predictive_mean_variance(&prior());
        let (_, var_noisy) = noisy.predictive_mean_variance(&prior());
        assert!(var_noisy > var_quiet);
    }

    #[test]
    fn marginal_likelihood_prefers_homogeneous_leaves() {
        // Same number of points; tight cluster should have higher marginal
        // likelihood than widely spread targets.
        let tight = LeafStats::from_targets(&[1.0, 1.02, 0.98, 1.01, 0.99]);
        let spread = LeafStats::from_targets(&[0.0, 2.0, -1.0, 3.0, 1.0]);
        assert!(tight.log_marginal_likelihood(&prior()) > spread.log_marginal_likelihood(&prior()));
    }

    #[test]
    fn predictive_density_peaks_at_the_leaf_mean() {
        let leaf = LeafStats::from_targets(&[2.0, 2.05, 1.95, 2.02, 1.98]);
        let at_mean = leaf.log_predictive_density(&prior(), 2.0);
        let far = leaf.log_predictive_density(&prior(), 5.0);
        assert!(at_mean > far);
    }

    #[test]
    fn merge_equals_fitting_on_concatenated_targets() {
        let a_targets = [1.0, 1.2, 0.8];
        let b_targets = [2.0, 2.2, 1.8, 2.1];
        let mut a = LeafStats::from_targets(&a_targets);
        let b = LeafStats::from_targets(&b_targets);
        a.merge(&b);
        let all: Vec<f64> = a_targets.iter().chain(b_targets.iter()).copied().collect();
        let combined = LeafStats::from_targets(&all);
        assert_eq!(a.count(), combined.count());
        assert!((a.mean() - combined.mean()).abs() < 1e-12);
        let (ma, va) = a.predictive_mean_variance(&prior());
        let (mc, vc) = combined.predictive_mean_variance(&prior());
        assert!((ma - mc).abs() < 1e-10);
        assert!((va - vc).abs() < 1e-10);
    }

    #[test]
    fn log_marginal_likelihood_is_consistent_with_sequential_predictives() {
        // Chain rule: LML(y1..yn) = Σ log p(y_i | y_1..y_{i-1}).
        let targets = [0.5, 0.7, 0.4, 0.6, 0.55];
        let p = prior();
        let mut sequential = 0.0;
        let mut leaf = LeafStats::new();
        for &y in &targets {
            sequential += leaf.log_predictive_density(&p, y);
            leaf.push(y);
        }
        let direct = leaf.log_marginal_likelihood(&p);
        assert!(
            (sequential - direct).abs() < 1e-8,
            "chain rule {sequential} vs direct {direct}"
        );
    }

    #[test]
    fn table_lml_is_bit_identical_to_direct_lml() {
        let p = prior();
        let mut table = LnGammaTable::new(&p);
        table.ensure(64);
        for n in [0usize, 1, 2, 5, 17, 64] {
            let targets: Vec<f64> = (0..n).map(|i| 1.0 + 0.3 * ((i % 7) as f64 - 3.0)).collect();
            let leaf = LeafStats::from_targets(&targets);
            assert_eq!(
                leaf.log_marginal_likelihood(&p),
                leaf.log_marginal_likelihood_with(&p, &table),
                "count {n}"
            );
        }
    }

    #[test]
    fn moments_agree_with_the_direct_computations() {
        let p = prior();
        let mut table = LnGammaTable::new(&p);
        table.ensure(40);
        let leaf = LeafStats::from_targets(
            &(0..40)
                .map(|i| 2.0 + 0.2 * ((i % 5) as f64 - 2.0))
                .collect::<Vec<_>>(),
        );
        let m = leaf.moments(&p, &table);
        let (mean, variance) = leaf.predictive_mean_variance(&p);
        assert_eq!(m.mean, mean);
        assert_eq!(m.variance, variance);
        assert_eq!(m.lml, leaf.log_marginal_likelihood(&p));
        assert_eq!(m.n_eff, 40.0 + p.kappa);
        for y in [1.5, 2.0, 2.7] {
            let direct = leaf.log_predictive_density(&p, y);
            let cached = m.log_density(y);
            assert!(
                (direct - cached).abs() < 1e-12,
                "density at {y}: direct {direct} vs cached {cached}"
            );
        }
    }

    #[test]
    fn lml_of_sums_matches_the_welford_route() {
        let p = prior();
        let mut table = LnGammaTable::new(&p);
        table.ensure(32);
        for n in [1usize, 2, 7, 32] {
            let targets: Vec<f64> = (0..n).map(|i| 1.3 + 0.4 * ((i % 6) as f64 - 2.5)).collect();
            let leaf = LeafStats::from_targets(&targets);
            let sum: f64 = targets.iter().sum();
            let sum_sq: f64 = targets.iter().map(|y| y * y).sum();
            let direct = leaf.log_marginal_likelihood(&p);
            let from_sums = log_marginal_likelihood_of_sums(n, sum, sum_sq, &p, &table);
            assert!(
                (direct - from_sums).abs() < 1e-9,
                "count {n}: welford {direct} vs sums {from_sums}"
            );
        }
        assert_eq!(
            log_marginal_likelihood_of_sums(0, 0.0, 0.0, &p, &table),
            0.0
        );
    }

    #[test]
    fn table_extends_lazily_and_reports_coverage() {
        let p = prior();
        let mut table = LnGammaTable::new(&p);
        assert_eq!(table.max_count(), 0);
        table.ensure(10);
        assert_eq!(table.max_count(), 10);
        table.ensure(3); // never shrinks
        assert_eq!(table.max_count(), 10);
        assert_eq!(table.ln_gamma_shape(0), ln_gamma(p.shape));
        assert_eq!(table.ln_gamma_shape(4), ln_gamma(p.shape + 2.0));
    }

    #[test]
    fn weakly_informative_prior_matches_requested_variance() {
        let p = LeafPrior::weakly_informative(0.0, 4.0);
        // E[σ²] = b/(a-1) = 4.
        assert!((p.scale / (p.shape - 1.0) - 4.0).abs() < 1e-12);
    }
}
