//! Conjugate Gaussian leaf model.
//!
//! Every leaf of a (dynamic or static) regression tree models its targets as
//! draws from a Gaussian with unknown mean and variance under a
//! normal–inverse-gamma (NIG) prior. This gives, in closed form,
//!
//! * the posterior-predictive distribution of a new target (a Student-t),
//! * the log marginal likelihood of the targets in the leaf (used to weight
//!   the dynamic tree's stay/prune/grow moves), and
//! * the log predictive density of a single new observation (used as the
//!   particle weight during particle learning).

use serde::{Deserialize, Serialize};

use alic_stats::special::ln_gamma;
use alic_stats::summary::OnlineStats;

/// Normal–inverse-gamma prior shared by every leaf of a tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeafPrior {
    /// Prior mean of the leaf mean.
    pub mean: f64,
    /// Prior pseudo-observation count for the mean (`κ₀`).
    pub kappa: f64,
    /// Inverse-gamma shape (`a₀`).
    pub shape: f64,
    /// Inverse-gamma scale (`b₀`).
    pub scale: f64,
}

impl LeafPrior {
    /// A weakly informative prior centred on `mean` with a typical target
    /// variance of `variance`.
    pub fn weakly_informative(mean: f64, variance: f64) -> Self {
        let shape = 2.0;
        LeafPrior {
            mean,
            kappa: 0.1,
            shape,
            // E[σ²] = b / (a - 1) = variance  =>  b = variance (a - 1).
            scale: (variance.max(1e-12)) * (shape - 1.0),
        }
    }
}

impl Default for LeafPrior {
    fn default() -> Self {
        LeafPrior::weakly_informative(0.0, 1.0)
    }
}

/// Sufficient statistics of the targets currently assigned to a leaf.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LeafStats {
    stats: OnlineStats,
}

impl LeafStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        LeafStats {
            stats: OnlineStats::new(),
        }
    }

    /// Builds statistics from a slice of target values.
    pub fn from_targets(targets: &[f64]) -> Self {
        let mut leaf = LeafStats::new();
        for &y in targets {
            leaf.push(y);
        }
        leaf
    }

    /// Adds one target value.
    pub fn push(&mut self, y: f64) {
        self.stats.push(y);
    }

    /// Number of targets in the leaf.
    pub fn count(&self) -> usize {
        self.stats.count()
    }

    /// Mean of the targets in the leaf (zero when empty).
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Sum of squared deviations from the mean.
    fn sum_sq_dev(&self) -> f64 {
        self.stats.variance() * (self.stats.count().saturating_sub(1)) as f64
    }

    /// Posterior NIG parameters given `prior`.
    fn posterior(&self, prior: &LeafPrior) -> LeafPrior {
        let n = self.count() as f64;
        if n == 0.0 {
            return *prior;
        }
        let mean = self.mean();
        let kappa_n = prior.kappa + n;
        let mean_n = (prior.kappa * prior.mean + n * mean) / kappa_n;
        let shape_n = prior.shape + 0.5 * n;
        let scale_n = prior.scale
            + 0.5 * self.sum_sq_dev()
            + 0.5 * prior.kappa * n * (mean - prior.mean) * (mean - prior.mean) / kappa_n;
        LeafPrior {
            mean: mean_n,
            kappa: kappa_n,
            shape: shape_n,
            scale: scale_n,
        }
    }

    /// Posterior-predictive distribution of a new target: a Student-t with
    /// the returned `(mean, scale², degrees of freedom)`.
    pub fn posterior_predictive(&self, prior: &LeafPrior) -> (f64, f64, f64) {
        let post = self.posterior(prior);
        let df = 2.0 * post.shape;
        let scale_sq = post.scale * (post.kappa + 1.0) / (post.shape * post.kappa);
        (post.mean, scale_sq, df)
    }

    /// Posterior-predictive mean and *variance* of a new target.
    ///
    /// The variance of a Student-t with `df > 2` is `scale² · df / (df − 2)`;
    /// for `df ≤ 2` the scale² itself is returned as a conservative proxy.
    pub fn predictive_mean_variance(&self, prior: &LeafPrior) -> (f64, f64) {
        let (mean, scale_sq, df) = self.posterior_predictive(prior);
        let variance = if df > 2.0 {
            scale_sq * df / (df - 2.0)
        } else {
            scale_sq
        };
        (mean, variance)
    }

    /// Log marginal likelihood of the targets in this leaf under `prior`.
    pub fn log_marginal_likelihood(&self, prior: &LeafPrior) -> f64 {
        let n = self.count() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let post = self.posterior(prior);
        ln_gamma(post.shape) - ln_gamma(prior.shape) + prior.shape * prior.scale.ln()
            - post.shape * post.scale.ln()
            + 0.5 * (prior.kappa.ln() - post.kappa.ln())
            - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Log posterior-predictive density of a single new target `y`.
    pub fn log_predictive_density(&self, prior: &LeafPrior, y: f64) -> f64 {
        let (mean, scale_sq, df) = self.posterior_predictive(prior);
        let z = (y - mean) * (y - mean) / (df * scale_sq);
        ln_gamma(0.5 * (df + 1.0))
            - ln_gamma(0.5 * df)
            - 0.5 * (df * std::f64::consts::PI * scale_sq).ln()
            - 0.5 * (df + 1.0) * (1.0 + z).ln()
    }

    /// Merges another leaf's statistics into this one (used when pruning).
    pub fn merge(&mut self, other: &LeafStats) {
        self.stats.merge(&other.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prior() -> LeafPrior {
        LeafPrior::weakly_informative(1.0, 0.25)
    }

    #[test]
    fn empty_leaf_predicts_the_prior() {
        let leaf = LeafStats::new();
        let (mean, var) = leaf.predictive_mean_variance(&prior());
        assert!((mean - 1.0).abs() < 1e-12);
        assert!(var > 0.0);
        assert_eq!(leaf.log_marginal_likelihood(&prior()), 0.0);
    }

    #[test]
    fn predictive_mean_approaches_sample_mean_with_data() {
        let targets: Vec<f64> = (0..50).map(|i| 3.0 + 0.01 * (i % 5) as f64).collect();
        let leaf = LeafStats::from_targets(&targets);
        let (mean, _) = leaf.predictive_mean_variance(&prior());
        assert!(
            (mean - leaf.mean()).abs() < 0.02,
            "mean {mean} vs {}",
            leaf.mean()
        );
    }

    #[test]
    fn predictive_variance_shrinks_with_more_data() {
        let few = LeafStats::from_targets(&[2.0, 2.1, 1.9]);
        let many = LeafStats::from_targets(
            &(0..60)
                .map(|i| 2.0 + 0.1 * ((i % 3) as f64 - 1.0))
                .collect::<Vec<_>>(),
        );
        let (_, var_few) = few.predictive_mean_variance(&prior());
        let (_, var_many) = many.predictive_mean_variance(&prior());
        assert!(var_many < var_few);
    }

    #[test]
    fn noisier_targets_have_larger_predictive_variance() {
        let quiet = LeafStats::from_targets(&[1.0, 1.01, 0.99, 1.0, 1.02, 0.98]);
        let noisy = LeafStats::from_targets(&[0.2, 1.8, 0.5, 1.5, 0.1, 1.9]);
        let (_, var_quiet) = quiet.predictive_mean_variance(&prior());
        let (_, var_noisy) = noisy.predictive_mean_variance(&prior());
        assert!(var_noisy > var_quiet);
    }

    #[test]
    fn marginal_likelihood_prefers_homogeneous_leaves() {
        // Same number of points; tight cluster should have higher marginal
        // likelihood than widely spread targets.
        let tight = LeafStats::from_targets(&[1.0, 1.02, 0.98, 1.01, 0.99]);
        let spread = LeafStats::from_targets(&[0.0, 2.0, -1.0, 3.0, 1.0]);
        assert!(tight.log_marginal_likelihood(&prior()) > spread.log_marginal_likelihood(&prior()));
    }

    #[test]
    fn predictive_density_peaks_at_the_leaf_mean() {
        let leaf = LeafStats::from_targets(&[2.0, 2.05, 1.95, 2.02, 1.98]);
        let at_mean = leaf.log_predictive_density(&prior(), 2.0);
        let far = leaf.log_predictive_density(&prior(), 5.0);
        assert!(at_mean > far);
    }

    #[test]
    fn merge_equals_fitting_on_concatenated_targets() {
        let a_targets = [1.0, 1.2, 0.8];
        let b_targets = [2.0, 2.2, 1.8, 2.1];
        let mut a = LeafStats::from_targets(&a_targets);
        let b = LeafStats::from_targets(&b_targets);
        a.merge(&b);
        let all: Vec<f64> = a_targets.iter().chain(b_targets.iter()).copied().collect();
        let combined = LeafStats::from_targets(&all);
        assert_eq!(a.count(), combined.count());
        assert!((a.mean() - combined.mean()).abs() < 1e-12);
        let (ma, va) = a.predictive_mean_variance(&prior());
        let (mc, vc) = combined.predictive_mean_variance(&prior());
        assert!((ma - mc).abs() < 1e-10);
        assert!((va - vc).abs() < 1e-10);
    }

    #[test]
    fn log_marginal_likelihood_is_consistent_with_sequential_predictives() {
        // Chain rule: LML(y1..yn) = Σ log p(y_i | y_1..y_{i-1}).
        let targets = [0.5, 0.7, 0.4, 0.6, 0.55];
        let p = prior();
        let mut sequential = 0.0;
        let mut leaf = LeafStats::new();
        for &y in &targets {
            sequential += leaf.log_predictive_density(&p, y);
            leaf.push(y);
        }
        let direct = leaf.log_marginal_likelihood(&p);
        assert!(
            (sequential - direct).abs() < 1e-8,
            "chain rule {sequential} vs direct {direct}"
        );
    }

    #[test]
    fn weakly_informative_prior_matches_requested_variance() {
        let p = LeafPrior::weakly_informative(0.0, 4.0);
        // E[σ²] = b/(a-1) = 4.
        assert!((p.scale / (p.shape - 1.0) - 4.0).abs() < 1e-12);
    }
}
