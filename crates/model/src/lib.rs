//! Surrogate regression models with uncertainty estimates.
//!
//! The paper's active learner is built around the **dynamic tree** model of
//! Taddy, Gramacy and Polson (§3.2): a Bayesian regression-tree model updated
//! by particle learning, chosen because it
//!
//! * evolves incrementally as observations arrive (no full refit per
//!   iteration),
//! * provides a predictive *variance* at any point of the space (needed by
//!   the acquisition functions), and
//! * resists over-fitting to noisy observations.
//!
//! This crate implements that model from scratch ([`dynatree`]), together
//! with the models it is compared against or built from:
//!
//! * [`cart`] — a classical static regression tree (Breiman et al.), the
//!   "static model used within the dynamic tree framework",
//! * [`gp`] — Gaussian-process regression with an RBF kernel, the
//!   "collective wisdom" alternative whose `O(n³)` inference cost motivates
//!   dynamic trees in the first place,
//! * [`knn`] / [`baseline`] — simple sanity-check regressors.
//!
//! All models implement the [`SurrogateModel`] trait; models that can also
//! score candidate usefulness for active learning (§3.3) implement
//! [`ActiveSurrogate`], providing MacKay's ALM and Cohn's ALC criteria.
//! The [`SurrogateSpec`] enum describes any family plus its
//! hyper-parameters as plain data and materializes boxed
//! `dyn ActiveSurrogate` models from it, which is how the experiment
//! harness stays model-agnostic.
//!
//! # Examples
//!
//! ```
//! use alic_model::dynatree::{DynaTree, DynaTreeConfig};
//! use alic_model::{row_views, ActiveSurrogate, SurrogateModel};
//!
//! // Fit y = x with a little curvature on a handful of points.
//! let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] + 0.1 * x[0] * x[0]).collect();
//! let mut model = DynaTree::new(DynaTreeConfig { particles: 50, seed: 1, ..Default::default() });
//! model.fit(&row_views(&xs), &ys)?;
//! model.update(&[0.5], 1.02)?;
//! let pred = model.predict(&[0.25])?;
//! assert!(pred.variance >= 0.0);
//! # Ok::<(), alic_model::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod cart;
pub mod dynatree;
pub mod gp;
pub mod knn;
pub mod leaf;
pub mod sgp;
pub mod snapshot;
pub mod spec;
pub mod traits;

pub use dynatree::{DynaTree, DynaTreeConfig};
pub use sgp::{SparseGaussianProcess, SparseGpConfig};
pub use spec::SurrogateSpec;
pub use traits::{ActiveSurrogate, Prediction, SurrogateModel};

/// Errors produced by the model crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// `fit` was called with no training data.
    EmptyTrainingSet,
    /// The number of inputs and targets differ.
    LengthMismatch {
        /// Number of feature vectors.
        inputs: usize,
        /// Number of target values.
        targets: usize,
    },
    /// A feature vector had the wrong dimensionality.
    DimensionMismatch {
        /// Dimensionality the model was trained with.
        expected: usize,
        /// Dimensionality of the offending vector.
        actual: usize,
    },
    /// `predict` or `update` was called before `fit`.
    NotFitted,
    /// A numerical operation failed (e.g. a kernel matrix was singular).
    Numerical(String),
    /// A non-finite feature or target value was supplied.
    NonFiniteInput,
    /// Serializing or restoring a model snapshot failed (see [`snapshot`]).
    Snapshot(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::EmptyTrainingSet => write!(f, "training set is empty"),
            ModelError::LengthMismatch { inputs, targets } => {
                write!(f, "{inputs} inputs but {targets} targets")
            }
            ModelError::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected}-dimensional input, got {actual}")
            }
            ModelError::NotFitted => write!(f, "model has not been fitted yet"),
            ModelError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            ModelError::NonFiniteInput => write!(f, "input contained a non-finite value"),
            ModelError::Snapshot(msg) => write!(f, "snapshot failure: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Borrows a nested training set as the row views [`SurrogateModel::fit`]
/// consumes.
///
/// The training APIs take `&[&[f64]]` so that callers holding a flat
/// `FeatureMatrix` can gather views without copying; this adapter exists for
/// call sites (mostly tests and examples) that still build `Vec<Vec<f64>>`.
pub fn row_views(rows: &[Vec<f64>]) -> Vec<&[f64]> {
    rows.iter().map(Vec::as_slice).collect()
}

/// Validates one `(x, y)` observation before it may touch model state.
///
/// Every [`SurrogateModel::update`] implementation calls this first, making
/// the non-finite-input policy uniform across the six families: a NaN or
/// infinite feature or target is rejected with
/// [`ModelError::NonFiniteInput`] *before any state mutation*, so a rejected
/// observation can never change a model's subsequent predictions. The
/// learner relies on this to quarantine bad observations without poisoning
/// the surrogate.
pub fn validate_observation(x: &[f64], y: f64) -> Result<()> {
    if !y.is_finite() || x.iter().any(|v| !v.is_finite()) {
        return Err(ModelError::NonFiniteInput);
    }
    Ok(())
}

pub(crate) fn validate_training_set(xs: &[&[f64]], ys: &[f64]) -> Result<usize> {
    if xs.is_empty() || ys.is_empty() {
        return Err(ModelError::EmptyTrainingSet);
    }
    if xs.len() != ys.len() {
        return Err(ModelError::LengthMismatch {
            inputs: xs.len(),
            targets: ys.len(),
        });
    }
    let dim = xs[0].len();
    if dim == 0 {
        return Err(ModelError::EmptyTrainingSet);
    }
    for x in xs {
        if x.len() != dim {
            return Err(ModelError::DimensionMismatch {
                expected: dim,
                actual: x.len(),
            });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::NonFiniteInput);
        }
    }
    if ys.iter().any(|v| !v.is_finite()) {
        return Err(ModelError::NonFiniteInput);
    }
    Ok(dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_consistent_data() {
        let xs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let ys = vec![0.5, 0.7];
        assert_eq!(validate_training_set(&row_views(&xs), &ys), Ok(2));
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        assert_eq!(
            validate_training_set(&[], &[]),
            Err(ModelError::EmptyTrainingSet)
        );
        assert_eq!(
            validate_training_set(&[&[1.0]], &[1.0, 2.0]),
            Err(ModelError::LengthMismatch {
                inputs: 1,
                targets: 2
            })
        );
        assert_eq!(
            validate_training_set(&[&[1.0], &[1.0, 2.0]], &[1.0, 2.0]),
            Err(ModelError::DimensionMismatch {
                expected: 1,
                actual: 2
            })
        );
        assert_eq!(
            validate_training_set(&[&[f64::NAN]], &[1.0]),
            Err(ModelError::NonFiniteInput)
        );
    }

    #[test]
    fn row_views_borrow_without_copying() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let views = row_views(&rows);
        assert_eq!(views.len(), 2);
        assert!(std::ptr::eq(views[0].as_ptr(), rows[0].as_ptr()));
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = ModelError::DimensionMismatch {
            expected: 3,
            actual: 1,
        };
        assert!(e.to_string().contains("3"));
        assert!(ModelError::NotFitted
            .to_string()
            .contains("not been fitted"));
    }
}
