//! Feature normalization.
//!
//! The paper (§4.5) scales and centres every feature of the configuration
//! vectors "to transform them into something similar to the Standard Normal
//! Distribution". [`Normalizer`] fits per-feature means and standard
//! deviations on a training matrix and applies (or inverts) the affine
//! transform.

use serde::{Deserialize, Serialize};

use crate::summary::Summary;
use crate::{Result, StatsError};

/// Per-feature z-score normalizer (centre by mean, scale by standard
/// deviation).
///
/// Constant features (zero standard deviation) are centred but left unscaled
/// so the transform stays invertible.
///
/// # Examples
///
/// ```
/// use alic_stats::normalize::Normalizer;
/// let rows = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]];
/// let norm = Normalizer::fit(&rows).unwrap();
/// let z = norm.transform_row(&rows[1]).unwrap();
/// assert!(z.iter().all(|v| v.abs() < 1e-9)); // middle row maps to the origin
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    means: Vec<f64>,
    scales: Vec<f64>,
}

impl Normalizer {
    /// Fits a normalizer to a row-major matrix of feature vectors.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `rows` is empty or has
    /// zero-width rows, and [`StatsError::LengthMismatch`] when rows have
    /// inconsistent widths.
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let width = rows[0].len();
        for row in rows {
            if row.len() != width {
                return Err(StatsError::LengthMismatch {
                    left: width,
                    right: row.len(),
                });
            }
        }
        let mut means = Vec::with_capacity(width);
        let mut scales = Vec::with_capacity(width);
        for j in 0..width {
            let column: Vec<f64> = rows.iter().map(|r| r[j]).collect();
            let summary = Summary::from_slice(&column);
            let sd = summary.std_dev();
            means.push(summary.mean);
            scales.push(if sd > 0.0 { sd } else { 1.0 });
        }
        Ok(Normalizer { means, scales })
    }

    /// Identity normalizer for `width` features (no centring, no scaling).
    pub fn identity(width: usize) -> Self {
        Normalizer {
            means: vec![0.0; width],
            scales: vec![1.0; width],
        }
    }

    /// Number of features this normalizer was fitted on.
    pub fn width(&self) -> usize {
        self.means.len()
    }

    /// Per-feature means used for centring.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature scales used for scaling.
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// Normalizes a single feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `row` has a different
    /// width than the fitted data.
    pub fn transform_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        self.check_width(row)?;
        Ok(row
            .iter()
            .zip(self.means.iter().zip(&self.scales))
            .map(|(v, (m, s))| (v - m) / s)
            .collect())
    }

    /// Normalizes a whole row-major matrix.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] for any row of the wrong
    /// width.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        rows.iter().map(|r| self.transform_row(r)).collect()
    }

    /// Inverts the normalization of a single feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `row` has a different
    /// width than the fitted data.
    pub fn inverse_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        self.check_width(row)?;
        Ok(row
            .iter()
            .zip(self.means.iter().zip(&self.scales))
            .map(|(v, (m, s))| v * s + m)
            .collect())
    }

    fn check_width(&self, row: &[f64]) -> Result<()> {
        if row.len() != self.width() {
            return Err(StatsError::DimensionMismatch {
                expected: self.width(),
                actual: row.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn example_rows() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 10.0, -5.0],
            vec![2.0, 20.0, 0.0],
            vec![3.0, 30.0, 5.0],
            vec![4.0, 40.0, 10.0],
        ]
    }

    #[test]
    fn transformed_columns_have_zero_mean_unit_variance() {
        let rows = example_rows();
        let norm = Normalizer::fit(&rows).unwrap();
        let z = norm.transform(&rows).unwrap();
        for j in 0..3 {
            let column: Vec<f64> = z.iter().map(|r| r[j]).collect();
            let s = Summary::from_slice(&column);
            assert!(s.mean.abs() < 1e-12, "column {j} mean {}", s.mean);
            assert!(
                (s.variance - 1.0).abs() < 1e-12,
                "column {j} var {}",
                s.variance
            );
        }
    }

    #[test]
    fn constant_feature_is_centred_but_not_scaled() {
        let rows = vec![vec![7.0, 1.0], vec![7.0, 2.0], vec![7.0, 3.0]];
        let norm = Normalizer::fit(&rows).unwrap();
        let z = norm.transform(&rows).unwrap();
        for row in &z {
            assert_eq!(row[0], 0.0);
        }
    }

    #[test]
    fn identity_normalizer_is_a_no_op() {
        let norm = Normalizer::identity(3);
        let row = vec![4.0, -2.0, 0.5];
        assert_eq!(norm.transform_row(&row).unwrap(), row);
    }

    #[test]
    fn fit_rejects_bad_shapes() {
        assert_eq!(Normalizer::fit(&[]), Err(StatsError::EmptyInput));
        assert_eq!(
            Normalizer::fit(&[vec![1.0, 2.0], vec![1.0]]),
            Err(StatsError::LengthMismatch { left: 2, right: 1 })
        );
    }

    #[test]
    fn transform_rejects_wrong_width() {
        let norm = Normalizer::fit(&example_rows()).unwrap();
        assert_eq!(
            norm.transform_row(&[1.0]),
            Err(StatsError::DimensionMismatch {
                expected: 3,
                actual: 1
            })
        );
    }

    proptest! {
        #[test]
        fn roundtrip_recovers_original(rows in proptest::collection::vec(
            proptest::collection::vec(-1e3f64..1e3, 4), 2..20)
        ) {
            let norm = Normalizer::fit(&rows).unwrap();
            for row in &rows {
                let z = norm.transform_row(row).unwrap();
                let back = norm.inverse_row(&z).unwrap();
                for (orig, rec) in row.iter().zip(&back) {
                    prop_assert!((orig - rec).abs() < 1e-6 * (1.0 + orig.abs()));
                }
            }
        }

        #[test]
        fn transformed_values_are_finite(rows in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, 3), 2..15)
        ) {
            let norm = Normalizer::fit(&rows).unwrap();
            for row in &rows {
                let z = norm.transform_row(row).unwrap();
                prop_assert!(z.iter().all(|v| v.is_finite()));
            }
        }
    }
}
