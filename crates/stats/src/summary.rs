//! Batch and online summary statistics.
//!
//! The active-learning loop needs running means and variances of repeated
//! runtime observations per configuration (sequential analysis, §3.1 of the
//! paper), while the evaluation needs batch statistics over whole datasets
//! (Table 2). Both are provided here.

use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// Batch summary statistics of a sample.
///
/// # Examples
///
/// ```
/// use alic_stats::summary::Summary;
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count, 4);
/// assert!((s.mean - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean. Zero for an empty sample.
    pub mean: f64,
    /// Unbiased (n-1) sample variance. Zero for samples of size < 2.
    pub variance: f64,
    /// Minimum observation. `f64::INFINITY` for an empty sample.
    pub min: f64,
    /// Maximum observation. `f64::NEG_INFINITY` for an empty sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over `values`.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut online = OnlineStats::new();
        for &v in values {
            online.push(v);
        }
        online.summary()
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean, `s / sqrt(n)`.
    ///
    /// Returns zero for samples of size zero.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Coefficient of variation (`std_dev / mean`), or zero when the mean is
    /// zero.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            variance: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Numerically stable online mean/variance accumulator (Welford's algorithm).
///
/// Used wherever observations arrive one at a time, most importantly for the
/// per-configuration runtime records kept by the sequential-analysis sampling
/// plan.
///
/// # Examples
///
/// ```
/// use alic_stats::summary::OnlineStats;
/// let mut stats = OnlineStats::new();
/// for x in [3.0, 4.0, 5.0] {
///     stats.push(x);
/// }
/// assert_eq!(stats.count(), 3);
/// assert!((stats.mean() - 4.0).abs() < 1e-12);
/// assert!((stats.variance() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct OnlineStats {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current running mean (zero when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (zero for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// The raw second central moment accumulator (Welford's `M2`). Exposed,
    /// together with [`OnlineStats::from_parts`], so checkpointing codecs can
    /// capture and restore the accumulator state bit-exactly.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Reconstructs an accumulator from previously captured state — the
    /// inverse of the [`count`](OnlineStats::count) /
    /// [`mean`](OnlineStats::mean) / [`m2`](OnlineStats::m2) /
    /// [`min`](OnlineStats::min) / [`max`](OnlineStats::max) accessors. A
    /// restored accumulator continues exactly where the captured one stopped,
    /// so resumed campaign units merge bit-identically.
    pub fn from_parts(count: usize, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        OnlineStats {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Smallest observation seen (infinity when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation seen (negative infinity when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Snapshot of the accumulated statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean,
            variance: self.variance(),
            min: self.min,
            max: self.max,
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut stats = OnlineStats::new();
        for v in iter {
            stats.push(v);
        }
        stats
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

/// Arithmetic mean of `values`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when `values` is empty.
pub fn mean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Unbiased sample variance of `values`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when `values` is empty.
pub fn variance(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(Summary::from_slice(values).variance)
}

/// Median of `values` (average of the two middle elements for even lengths).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when `values` is empty.
pub fn median(values: &[f64]) -> Result<f64> {
    quantile(values, 0.5)
}

/// Linear-interpolation quantile `q` (in `[0, 1]`) of `values`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when `values` is empty and
/// [`StatsError::InvalidConfidenceLevel`] when `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidConfidenceLevel);
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("non-finite value in quantile input")
    });
    let pos = q * (sorted.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    if lower == upper {
        Ok(sorted[lower])
    } else {
        let frac = pos - lower as f64;
        Ok(sorted[lower] * (1.0 - frac) + sorted[upper] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample_has_zero_variance() {
        let s = Summary::from_slice(&[5.0; 10]);
        assert_eq!(s.count, 10);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_matches_hand_computed_values() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Population variance is 4.0; unbiased variance is 4.0 * 8 / 7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn default_summary_is_empty() {
        let s = Summary::default();
        assert_eq!(s.count, 0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn online_stats_match_batch_statistics() {
        let values = [0.3, 1.7, -2.5, 8.1, 4.4, 3.3, 0.0];
        let online: OnlineStats = values.iter().copied().collect();
        let batch = Summary::from_slice(&values);
        assert_eq!(online.count(), batch.count);
        assert!((online.mean() - batch.mean).abs() < 1e-12);
        assert!((online.variance() - batch.variance).abs() < 1e-12);
        assert_eq!(online.min(), batch.min);
        assert_eq!(online.max(), batch.max);
    }

    #[test]
    fn online_merge_equals_single_pass() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let mut left: OnlineStats = a.iter().copied().collect();
        let right: OnlineStats = b.iter().copied().collect();
        left.merge(&right);

        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let combined = Summary::from_slice(&all);
        assert_eq!(left.count(), combined.count);
        assert!((left.mean() - combined.mean).abs() < 1e-12);
        assert!((left.variance() - combined.variance).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut stats: OnlineStats = [1.0, 2.0].iter().copied().collect();
        let before = stats.summary();
        stats.merge(&OnlineStats::new());
        assert_eq!(stats.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&stats);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn from_parts_restores_the_accumulator_exactly() {
        let original: OnlineStats = [0.3, 1.7, -2.5, 8.1].iter().copied().collect();
        let mut restored = OnlineStats::from_parts(
            original.count(),
            original.mean(),
            original.m2(),
            original.min(),
            original.max(),
        );
        assert_eq!(restored, original);
        // The restored accumulator keeps accumulating identically.
        let mut reference = original;
        restored.push(4.4);
        reference.push(4.4);
        assert_eq!(restored, reference);
    }

    #[test]
    fn mean_and_variance_reject_empty_input() {
        assert_eq!(mean(&[]), Err(StatsError::EmptyInput));
        assert_eq!(variance(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn median_of_odd_and_even_lengths() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn quantile_bounds_are_min_and_max() {
        let values = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(quantile(&values, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&values, 1.0).unwrap(), 9.0);
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        assert_eq!(
            quantile(&[1.0], 1.5),
            Err(StatsError::InvalidConfidenceLevel)
        );
    }

    #[test]
    fn coefficient_of_variation_handles_zero_mean() {
        let s = Summary::from_slice(&[-1.0, 1.0]);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }
}
