//! u64 bitset masks over contiguous `f64` columns.
//!
//! The dynamic tree's split-proposal scan asks, for a batch of candidate
//! thresholds, "what are the count, sum and sum of squares of the responses
//! whose feature value falls at or below the threshold?". This module turns
//! that question into word-at-a-time machine operations:
//!
//! 1. [`fill_mask_le`] compares one contiguous feature column against a
//!    threshold and packs the results into u64 mask words (bit `i % 64` of
//!    word `i / 64` is the membership of point `i`),
//! 2. [`count_ones`] reduces the mask to the left-child count with the
//!    `popcnt` instruction, and
//! 3. [`masked_sum_and_sum_sq`] walks the set bits **in ascending index
//!    order** to accumulate `Σy` and `Σy²` over the left child.
//!
//! # Bit-identity contract
//!
//! The reference scalar scan accumulates `acc += mask * y` with
//! `mask ∈ {0.0, 1.0}` for every point in column order. The set-bit walk
//! skips the `mask == 0.0` terms instead of adding `±0.0`, and that skip is
//! *exact*: the accumulator starts at `+0.0` and can never become `-0.0`
//! (in round-to-nearest, `x + (-x) == +0.0` and adding `±0.0` to any other
//! value leaves it unchanged), so eliding a `+(±0.0)` step never changes the
//! stored bits. Counts are exact integers below 2⁵³ either way. The SIMD
//! mask builder performs the same IEEE `<=` comparisons two lanes at a time,
//! so all three paths produce bit-identical `(count, Σy, Σy²)` triples — the
//! property `tests/scan_identity.rs` pins down.
//!
//! Anything that would reassociate the sums (blocked partial sums, sorted
//! prefix sums) is deliberately absent: it would be faster but not
//! bit-identical, and the workspace's determinism contract wins.

/// Number of points packed into one mask word.
pub const WORD_BITS: usize = 64;

/// Packs the `value <= threshold` membership of a contiguous column into
/// mask words: bit `i % 64` of `words[i / 64]` is set iff
/// `values[i] <= threshold`. Trailing bits of the last word are zero.
///
/// `words` is cleared and refilled, keeping its allocation.
///
/// # Examples
///
/// ```
/// let mut words = Vec::new();
/// alic_stats::bitset::fill_mask_le(&[0.5, 2.0, 1.0], 1.0, &mut words);
/// assert_eq!(words, vec![0b101]);
/// ```
pub fn fill_mask_le(values: &[f64], threshold: f64, words: &mut Vec<u64>) {
    words.clear();
    words.resize(values.len().div_ceil(WORD_BITS), 0);
    fill_mask_le_into(values, threshold, words);
}

/// [`fill_mask_le`] writing into a pre-sized word slice (callers packing
/// several mask strips into one buffer).
///
/// # Panics
///
/// Panics if `words.len() != values.len().div_ceil(64)`.
pub fn fill_mask_le_into(values: &[f64], threshold: f64, words: &mut [u64]) {
    assert_eq!(words.len(), values.len().div_ceil(WORD_BITS));
    let mut chunks = values.chunks_exact(WORD_BITS);
    let mut out = words.iter_mut();
    for chunk in chunks.by_ref() {
        let mut word = 0u64;
        for (bit, &value) in chunk.iter().enumerate() {
            word |= u64::from(value <= threshold) << bit;
        }
        *out.next().expect("words sized to values") = word;
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut word = 0u64;
        for (bit, &value) in tail.iter().enumerate() {
            word |= u64::from(value <= threshold) << bit;
        }
        *out.next().expect("words sized to values") = word;
    }
}

/// [`fill_mask_le`] with the comparisons done two lanes at a time via SSE2
/// packed compares (`cmplepd` + `movmskpd`). SSE2 is part of the x86-64
/// baseline, so no runtime feature detection is needed.
///
/// The packed compare is the same IEEE `<=` as the scalar operator, so the
/// produced words are identical to [`fill_mask_le`]'s.
#[cfg(target_arch = "x86_64")]
pub fn fill_mask_le_simd(values: &[f64], threshold: f64, words: &mut Vec<u64>) {
    words.clear();
    words.resize(values.len().div_ceil(WORD_BITS), 0);
    fill_mask_le_simd_into(values, threshold, words);
}

/// [`fill_mask_le_simd`] writing into a pre-sized word slice.
///
/// # Panics
///
/// Panics if `words.len() != values.len().div_ceil(64)`.
#[cfg(target_arch = "x86_64")]
pub fn fill_mask_le_simd_into(values: &[f64], threshold: f64, words: &mut [u64]) {
    use core::arch::x86_64::{_mm_cmple_pd, _mm_loadu_pd, _mm_movemask_pd, _mm_set1_pd};

    assert_eq!(words.len(), values.len().div_ceil(WORD_BITS));
    // SAFETY: SSE2 is unconditionally available on x86_64, and every
    // `_mm_loadu_pd` reads two f64s that `chunks_exact` guarantees in
    // bounds; `loadu` has no alignment requirement.
    unsafe {
        let wide_threshold = _mm_set1_pd(threshold);
        let mut chunks = values.chunks_exact(WORD_BITS);
        let mut out = words.iter_mut();
        for chunk in chunks.by_ref() {
            let mut word = 0u64;
            let mut bit = 0;
            while bit < WORD_BITS {
                let lanes = _mm_loadu_pd(chunk.as_ptr().add(bit));
                let mask = _mm_movemask_pd(_mm_cmple_pd(lanes, wide_threshold)) as u64;
                word |= mask << bit;
                bit += 2;
            }
            *out.next().expect("words sized to values") = word;
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            let mut bit = 0;
            while bit + 2 <= tail.len() {
                let lanes = _mm_loadu_pd(tail.as_ptr().add(bit));
                let mask = _mm_movemask_pd(_mm_cmple_pd(lanes, wide_threshold)) as u64;
                word |= mask << bit;
                bit += 2;
            }
            if bit < tail.len() {
                word |= u64::from(tail[bit] <= threshold) << bit;
            }
            *out.next().expect("words sized to values") = word;
        }
    }
}

/// Total number of set bits across the mask words (the left-child count).
#[inline]
pub fn count_ones(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// `(Σ values[i], Σ values[i]²)` over the set bits of the mask, accumulated
/// in ascending index order (see the module-level bit-identity contract).
///
/// # Panics
///
/// Panics in debug builds when a set bit indexes past `values`.
#[inline]
pub fn masked_sum_and_sum_sq(words: &[u64], values: &[f64]) -> (f64, f64) {
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for (word_index, &word) in words.iter().enumerate() {
        let base = word_index * WORD_BITS;
        let mut bits = word;
        while bits != 0 {
            let value = values[base + bits.trailing_zeros() as usize];
            sum += value;
            sum_sq += value * value;
            bits &= bits - 1;
        }
    }
    (sum, sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_mask(values: &[f64], threshold: f64) -> Vec<u64> {
        let mut words = vec![0u64; values.len().div_ceil(WORD_BITS)];
        for (i, &v) in values.iter().enumerate() {
            if v <= threshold {
                words[i / WORD_BITS] |= 1 << (i % WORD_BITS);
            }
        }
        words
    }

    fn column(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37 + 11) % 101) as f64 / 17.0 - 2.5)
            .collect()
    }

    #[test]
    fn mask_matches_reference_across_lengths() {
        for n in [0, 1, 2, 63, 64, 65, 127, 128, 200] {
            let values = column(n);
            let threshold = 0.4;
            let mut words = Vec::new();
            fill_mask_le(&values, threshold, &mut words);
            assert_eq!(words, reference_mask(&values, threshold), "n={n}");
            assert_eq!(
                count_ones(&words),
                values.iter().filter(|v| **v <= threshold).count(),
                "n={n}"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_mask_is_identical_to_scalar() {
        for n in [0, 1, 2, 3, 63, 64, 65, 66, 127, 128, 200] {
            let values = column(n);
            for threshold in [-3.0, -0.1, 0.4, 2.9, 10.0] {
                let mut scalar = Vec::new();
                let mut simd = Vec::new();
                fill_mask_le(&values, threshold, &mut scalar);
                fill_mask_le_simd(&values, threshold, &mut simd);
                assert_eq!(scalar, simd, "n={n} threshold={threshold}");
            }
        }
    }

    #[test]
    fn masked_sums_are_bit_identical_to_mask_multiply() {
        for n in [1, 5, 64, 65, 130] {
            let xs = column(n);
            let ys: Vec<f64> = (0..n)
                .map(|i| ((i * 29 + 3) % 53) as f64 / 7.0 - 3.0)
                .collect();
            let threshold = 0.7;
            let mut words = Vec::new();
            fill_mask_le(&xs, threshold, &mut words);
            let (sum, sum_sq) = masked_sum_and_sum_sq(&words, &ys);
            let (mut ref_sum, mut ref_sum_sq) = (0.0f64, 0.0f64);
            for i in 0..n {
                let mask = f64::from(xs[i] <= threshold);
                ref_sum += mask * ys[i];
                ref_sum_sq += mask * (ys[i] * ys[i]);
            }
            assert_eq!(sum.to_bits(), ref_sum.to_bits(), "n={n}");
            assert_eq!(sum_sq.to_bits(), ref_sum_sq.to_bits(), "n={n}");
        }
    }

    #[test]
    fn refilling_reuses_the_buffer() {
        let mut words = Vec::new();
        fill_mask_le(&column(130), 0.0, &mut words);
        assert_eq!(words.len(), 3);
        fill_mask_le(&column(10), 100.0, &mut words);
        assert_eq!(words.len(), 1);
        assert_eq!(count_ones(&words), 10);
    }
}
