//! Statistics, numerics and sampling substrate for the `alic` workspace.
//!
//! This crate provides the numerical building blocks used throughout the
//! reproduction of *"Minimizing the Cost of Iterative Compilation with Active
//! Learning"* (Ogilvie et al., CGO 2017):
//!
//! * [`summary`] — batch and online (Welford) summary statistics,
//! * [`ci`] — Student-t confidence intervals as used by the paper's
//!   post-hoc sampling-plan validation (§4.3),
//! * [`error`] — model-quality metrics (RMSE, MAE) and the geometric mean
//!   used to aggregate speed-ups (Table 1),
//! * [`normalize`] — feature scaling and centring (§4.5),
//! * [`features`] — flat row-major feature storage with zero-copy row views,
//!   the backing store of the batch scoring pipeline,
//! * [`matrix`] / [`cholesky`] — a small dense linear-algebra kernel used by
//!   the Gaussian-process comparison models,
//! * [`bitset`] — u64 mask words over contiguous columns (popcount counts,
//!   in-order masked sums), the substrate of the dynamic tree's split scan,
//! * [`sampling`] — random subset selection used for candidate sets,
//! * [`rng`] — deterministic, seedable random-number-generator helpers,
//! * [`fault`] — the deterministic fault-injection plane behind the
//!   workspace's chaos testing (`ALIC_CHAOS`),
//! * [`policy`] — the unified retry/timeout/backoff policy with
//!   deterministic, fault-plan-seeded jitter.
//!
//! # Examples
//!
//! ```
//! use alic_stats::summary::Summary;
//! use alic_stats::ci::confidence_interval;
//!
//! let runtimes = [2.10, 2.14, 2.09, 2.12, 2.11];
//! let summary = Summary::from_slice(&runtimes);
//! let ci = confidence_interval(&runtimes, 0.95).unwrap();
//! assert!(ci.lower <= summary.mean && summary.mean <= ci.upper);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitset;
pub mod cholesky;
pub mod ci;
pub mod error;
pub mod fault;
pub mod features;
pub mod matrix;
pub mod normalize;
pub mod policy;
pub mod rng;
pub mod sampling;
pub mod special;
pub mod summary;

pub use ci::{confidence_interval, ConfidenceInterval};
pub use error::{geometric_mean, mae, rmse};
pub use features::FeatureMatrix;
pub use matrix::Matrix;
pub use normalize::Normalizer;
pub use summary::{OnlineStats, Summary};

/// Errors produced by the statistics substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input slice was empty but a non-empty slice was required.
    EmptyInput,
    /// The two input slices had different lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The requested confidence level was outside the open interval (0, 1).
    InvalidConfidenceLevel,
    /// A matrix operation received incompatible dimensions.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// Cholesky decomposition failed because the matrix is not positive
    /// definite.
    NotPositiveDefinite,
    /// An input value was not finite (NaN or infinite).
    NonFiniteInput,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input slice was empty"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "input slices have different lengths ({left} vs {right})")
            }
            StatsError::InvalidConfidenceLevel => {
                write!(f, "confidence level must lie strictly between 0 and 1")
            }
            StatsError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch (expected {expected}, got {actual})")
            }
            StatsError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            StatsError::NonFiniteInput => write!(f, "input contained a non-finite value"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StatsError>;
