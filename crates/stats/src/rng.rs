//! Deterministic random-number-generator helpers.
//!
//! Every experiment in the paper is "repeated ten times with new random
//! seeds" (§4.4). To make those repetitions reproducible across platforms and
//! runs, the whole workspace derives its generators from explicit `u64` seeds
//! through [`seeded_rng`] and [`derive_seed`].

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The concrete PRNG used throughout the workspace.
///
/// ChaCha12 gives portable, platform-independent streams with a 64-bit seed,
/// which is exactly what reproducible experiments need.
pub type Rng = ChaCha12Rng;

/// Creates a deterministic PRNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use rand::Rng as _;
/// let mut a = alic_stats::rng::seeded_rng(7);
/// let mut b = alic_stats::rng::seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> Rng {
    ChaCha12Rng::seed_from_u64(seed)
}

/// Derives a new seed from a base seed and a stream label.
///
/// Used to give independent, reproducible streams to different components of
/// one experiment (e.g. the simulator noise, the candidate sampler and the
/// model's particle moves) without the streams being correlated.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer over the combined value; cheap and well mixed.
    let mut z = base
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a PRNG for a named sub-stream of a base seed.
pub fn seeded_stream(base: u64, stream: u64) -> Rng {
    seeded_rng(derive_seed(base, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn same_seed_gives_same_stream() {
        let a: Vec<u64> = (0..16)
            .map({
                let mut rng = seeded_rng(42);
                move |_| rng.gen()
            })
            .collect();
        let b: Vec<u64> = (0..16)
            .map({
                let mut rng = seeded_rng(42);
                move |_| rng.gen()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_seeds_differ_across_streams() {
        let s0 = derive_seed(99, 0);
        let s1 = derive_seed(99, 1);
        let s2 = derive_seed(99, 2);
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
        assert_ne!(s0, s2);
    }

    #[test]
    fn derived_seeds_are_deterministic() {
        assert_eq!(derive_seed(5, 7), derive_seed(5, 7));
    }

    #[test]
    fn stream_rng_is_reproducible() {
        let mut a = seeded_stream(3, 11);
        let mut b = seeded_stream(3, 11);
        assert_eq!(a.gen::<f64>(), b.gen::<f64>());
    }
}
