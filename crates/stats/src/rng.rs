//! Deterministic random-number-generator helpers.
//!
//! Every experiment in the paper is "repeated ten times with new random
//! seeds" (§4.4). To make those repetitions reproducible across platforms and
//! runs, the whole workspace derives its generators from explicit `u64` seeds
//! through [`seeded_rng`] and [`derive_seed`].

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The concrete PRNG used throughout the workspace.
///
/// ChaCha12 gives portable, platform-independent streams with a 64-bit seed,
/// which is exactly what reproducible experiments need.
pub type Rng = ChaCha12Rng;

/// Creates a deterministic PRNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use rand::Rng as _;
/// let mut a = alic_stats::rng::seeded_rng(7);
/// let mut b = alic_stats::rng::seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> Rng {
    ChaCha12Rng::seed_from_u64(seed)
}

/// Derives a new seed from a base seed and a stream label.
///
/// Used to give independent, reproducible streams to different components of
/// one experiment (e.g. the simulator noise, the candidate sampler and the
/// model's particle moves) without the streams being correlated.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer over the combined value; cheap and well mixed.
    let mut z = base
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a PRNG for a named sub-stream of a base seed.
pub fn seeded_stream(base: u64, stream: u64) -> Rng {
    seeded_rng(derive_seed(base, stream))
}

/// Derives a seed from a base seed and **two** stream labels by chaining
/// [`derive_seed`].
///
/// This is the derivation behind per-work-item RNG streams in parallel
/// loops: a `(base, outer, inner)` triple — e.g. `(model seed, observation
/// index, particle index)` in the dynamic tree's particle updates — maps to
/// one independent stream, so every item can be processed on any thread in
/// any order while the overall computation stays bit-identical to a serial
/// run.
pub fn derive_seed2(base: u64, outer: u64, inner: u64) -> u64 {
    derive_seed(derive_seed(base, outer), inner)
}

/// Creates a PRNG for the `(outer, inner)` sub-stream of a base seed (see
/// [`derive_seed2`]).
pub fn seeded_substream(base: u64, outer: u64, inner: u64) -> Rng {
    seeded_rng(derive_seed2(base, outer, inner))
}

/// A tiny, fast deterministic generator (SplitMix64) for throwaway
/// per-work-item streams.
///
/// ChaCha12 ([`Rng`]) is the right choice for long-lived streams, but its
/// key setup costs more than an entire work item when a hot loop needs a
/// fresh stream per `(observation, particle)` pair and draws fewer than a
/// dozen values from it. SplitMix64 passes BigCrush, seeds in one
/// instruction, and every draw is a handful of arithmetic ops — and it is
/// just as deterministic and platform-independent, which is all the
/// reproducibility contract needs.
///
/// Not a drop-in `rand` generator on purpose: the three methods below are
/// the complete surface the workspace uses, and keeping it minimal avoids
/// accidental coupling to the `rand` shim's distribution code.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates the stream for `(base, outer, inner)` (same derivation as
    /// [`seeded_substream`]).
    pub fn substream(base: u64, outer: u64, inner: u64) -> Self {
        SmallRng {
            state: derive_seed2(base, outer, inner),
        }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n`.
    ///
    /// Uses the widening-multiply range reduction; the modulo bias is at
    /// most `n / 2⁶⁴`, far below anything a stochastic tree move could
    /// resolve.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `n` is zero.
    #[inline]
    pub fn gen_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform draw from `[lo, hi)` (degenerate to `lo` when `hi <= lo`).
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        // 53 uniform mantissa bits, the standard [0, 1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn same_seed_gives_same_stream() {
        let a: Vec<u64> = (0..16)
            .map({
                let mut rng = seeded_rng(42);
                move |_| rng.gen()
            })
            .collect();
        let b: Vec<u64> = (0..16)
            .map({
                let mut rng = seeded_rng(42);
                move |_| rng.gen()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_seeds_differ_across_streams() {
        let s0 = derive_seed(99, 0);
        let s1 = derive_seed(99, 1);
        let s2 = derive_seed(99, 2);
        assert_ne!(s0, s1);
        assert_ne!(s1, s2);
        assert_ne!(s0, s2);
    }

    #[test]
    fn derived_seeds_are_deterministic() {
        assert_eq!(derive_seed(5, 7), derive_seed(5, 7));
    }

    #[test]
    fn stream_rng_is_reproducible() {
        let mut a = seeded_stream(3, 11);
        let mut b = seeded_stream(3, 11);
        assert_eq!(a.gen::<f64>(), b.gen::<f64>());
    }

    #[test]
    fn substreams_are_reproducible_and_distinct_in_both_labels() {
        let mut a = seeded_substream(9, 4, 7);
        let mut b = seeded_substream(9, 4, 7);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let seeds = [
            derive_seed2(9, 4, 7),
            derive_seed2(9, 4, 8),
            derive_seed2(9, 5, 7),
            derive_seed2(10, 4, 7),
            // Swapping the labels must not collide either.
            derive_seed2(9, 7, 4),
        ];
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "seeds {i} and {j} collide");
            }
        }
    }

    #[test]
    fn small_rng_is_reproducible_and_in_range() {
        let mut a = SmallRng::substream(3, 1, 2);
        let mut b = SmallRng::substream(3, 1, 2);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = SmallRng::substream(7, 0, 0);
        for _ in 0..1000 {
            let i = rng.gen_index(13);
            assert!(i < 13);
            let v = rng.gen_range_f64(2.0, 5.0);
            assert!((2.0..5.0).contains(&v), "{v} out of range");
        }
        // Degenerate float range collapses to the lower bound.
        assert_eq!(rng.gen_range_f64(4.0, 4.0), 4.0);
    }

    #[test]
    fn small_rng_streams_differ_across_items() {
        let a: Vec<u64> = {
            let mut r = SmallRng::substream(5, 10, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::substream(5, 10, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
