//! Student-t confidence intervals on the mean.
//!
//! The paper's §4.3 validates fixed sampling plans post hoc by computing the
//! ratio of the 95% confidence-interval half width to the mean and rejecting
//! samples that breach a threshold (1% or 5%). Table 2 reports the spread of
//! that ratio for 5- and 35-observation plans. This module provides exactly
//! that machinery.

use serde::{Deserialize, Serialize};

use crate::special::student_t_quantile;
use crate::summary::Summary;
use crate::{Result, StatsError};

/// A two-sided confidence interval for a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub level: f64,
    /// Number of observations the interval is based on.
    pub count: usize,
}

impl ConfidenceInterval {
    /// Half width of the interval.
    pub fn half_width(&self) -> f64 {
        0.5 * (self.upper - self.lower)
    }

    /// Ratio of the half width to the absolute mean — the paper's post-hoc
    /// validation statistic ("CI / mean", §4.3 and Table 2).
    ///
    /// Returns infinity when the mean is zero but the interval is not
    /// degenerate, and zero when both are zero.
    pub fn ratio_to_mean(&self) -> f64 {
        let hw = self.half_width();
        if self.mean == 0.0 {
            if hw == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            hw / self.mean.abs()
        }
    }

    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        self.lower <= value && value <= self.upper
    }

    /// Whether this interval overlaps `other`.
    ///
    /// Used by raced-profile style early termination (Leather et al., LCTES
    /// 2009, discussed in the paper's related work): configurations whose
    /// interval no longer overlaps the incumbent best can be abandoned.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lower <= other.upper && other.lower <= self.upper
    }
}

/// Computes a two-sided Student-t confidence interval for the mean of
/// `values` at confidence `level` (e.g. `0.95`).
///
/// For samples of size one the interval is degenerate (`lower == upper ==
/// mean`), mirroring the "one observation" sampling plan of the paper where
/// no uncertainty estimate is available.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty sample and
/// [`StatsError::InvalidConfidenceLevel`] when `level` is not in `(0, 1)`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), alic_stats::StatsError> {
/// let ci = alic_stats::ci::confidence_interval(&[10.0, 10.5, 9.5, 10.2], 0.95)?;
/// assert!(ci.contains(10.05));
/// # Ok(())
/// # }
/// ```
pub fn confidence_interval(values: &[f64], level: f64) -> Result<ConfidenceInterval> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::InvalidConfidenceLevel);
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteInput);
    }
    let summary = Summary::from_slice(values);
    Ok(interval_from_summary(&summary, level))
}

/// Builds the confidence interval from precomputed summary statistics.
///
/// Degenerate (zero-width) intervals are returned for samples of size zero
/// or one.
pub fn interval_from_summary(summary: &Summary, level: f64) -> ConfidenceInterval {
    if summary.count < 2 {
        return ConfidenceInterval {
            mean: summary.mean,
            lower: summary.mean,
            upper: summary.mean,
            level,
            count: summary.count,
        };
    }
    let df = (summary.count - 1) as f64;
    let alpha = 1.0 - level;
    let t = student_t_quantile(1.0 - alpha / 2.0, df);
    let half = t * summary.std_error();
    ConfidenceInterval {
        mean: summary.mean,
        lower: summary.mean - half,
        upper: summary.mean + half,
        level,
        count: summary.count,
    }
}

/// Result of the paper's post-hoc sampling-plan validation: does the ratio of
/// the CI half width to the mean stay below `threshold`?
///
/// # Errors
///
/// Propagates errors from [`confidence_interval`].
pub fn passes_ci_threshold(values: &[f64], level: f64, threshold: f64) -> Result<bool> {
    let ci = confidence_interval(values, level)?;
    Ok(ci.ratio_to_mean() <= threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_mean_and_is_symmetric() {
        let values = [2.1, 2.2, 2.0, 2.15, 2.05, 2.1];
        let ci = confidence_interval(&values, 0.95).unwrap();
        assert!(ci.contains(ci.mean));
        assert!((ci.upper - ci.mean - (ci.mean - ci.lower)).abs() < 1e-12);
        assert_eq!(ci.count, 6);
    }

    #[test]
    fn known_interval_width() {
        // n = 5, mean = 10, s = 1  =>  half width = t_{0.975,4} / sqrt(5).
        let values = [9.0, 9.5, 10.0, 10.5, 11.0];
        let s = Summary::from_slice(&values).std_dev();
        let ci = confidence_interval(&values, 0.95).unwrap();
        let expected = 2.776 * s / 5f64.sqrt();
        assert!((ci.half_width() - expected).abs() < 2e-3);
    }

    #[test]
    fn single_observation_gives_degenerate_interval() {
        let ci = confidence_interval(&[3.3], 0.95).unwrap();
        assert_eq!(ci.lower, 3.3);
        assert_eq!(ci.upper, 3.3);
        assert_eq!(ci.ratio_to_mean(), 0.0);
    }

    #[test]
    fn wider_confidence_means_wider_interval() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ci90 = confidence_interval(&values, 0.90).unwrap();
        let ci99 = confidence_interval(&values, 0.99).unwrap();
        assert!(ci99.half_width() > ci90.half_width());
    }

    #[test]
    fn more_observations_shrink_the_interval() {
        let narrow: Vec<f64> = (0..35)
            .map(|i| 10.0 + 0.1 * ((i % 5) as f64 - 2.0))
            .collect();
        let wide = &narrow[..5];
        let ci_narrow = confidence_interval(&narrow, 0.95).unwrap();
        let ci_wide = confidence_interval(wide, 0.95).unwrap();
        assert!(ci_narrow.half_width() < ci_wide.half_width());
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert_eq!(confidence_interval(&[], 0.95), Err(StatsError::EmptyInput));
        assert_eq!(
            confidence_interval(&[1.0, 2.0], 1.0),
            Err(StatsError::InvalidConfidenceLevel)
        );
        assert_eq!(
            confidence_interval(&[1.0, f64::NAN], 0.95),
            Err(StatsError::NonFiniteInput)
        );
    }

    #[test]
    fn ratio_to_mean_handles_zero_mean() {
        let ci = confidence_interval(&[-1.0, 1.0], 0.95).unwrap();
        assert!(ci.ratio_to_mean().is_infinite());
    }

    #[test]
    fn threshold_check_matches_ratio() {
        let values = [100.0, 100.1, 99.9, 100.05, 99.95];
        assert!(passes_ci_threshold(&values, 0.95, 0.01).unwrap());
        let noisy = [100.0, 140.0, 60.0, 120.0, 80.0];
        assert!(!passes_ci_threshold(&noisy, 0.95, 0.01).unwrap());
    }

    #[test]
    fn overlap_detection() {
        let a = confidence_interval(&[1.0, 1.1, 0.9], 0.95).unwrap();
        let b = confidence_interval(&[1.05, 1.15, 0.95], 0.95).unwrap();
        let c = confidence_interval(&[5.0, 5.1, 4.9], 0.95).unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }
}
