//! Special mathematical functions.
//!
//! Implemented from scratch so that the workspace does not need an external
//! scientific-computing dependency: the log-gamma function (Lanczos
//! approximation), the regularized incomplete beta function (Lentz continued
//! fraction), the Student-t and standard-normal distribution functions, and
//! their inverses. These back the confidence-interval machinery in
//! [`crate::ci`] and the posterior-predictive computations of the
//! dynamic-tree model.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9) which is accurate to about
/// 1e-13 over the range used by this workspace.
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection formula is intentionally not
/// implemented because no caller needs it).
///
/// # Examples
///
/// ```
/// let half_ln_pi = alic_stats::special::ln_gamma(0.5);
/// assert!((half_ln_pi - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection via ln Γ(x) = ln(π / sin(πx)) - ln Γ(1 - x).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`.
///
/// Evaluated with the Lentz continued-fraction expansion, using the symmetry
/// relation to keep the fraction in its rapidly converging region.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` lies outside `[0, 1]`.
pub fn betainc_regularized(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "betainc requires positive shape parameters"
    );
    assert!((0.0..=1.0).contains(&x), "betainc requires x in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front =
        (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

/// Modified Lentz evaluation of the continued fraction for the incomplete
/// beta function.
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Cumulative distribution function of Student's t distribution with `df`
/// degrees of freedom.
///
/// # Panics
///
/// Panics if `df <= 0`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t.is_infinite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let p = 0.5 * betainc_regularized(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Inverse CDF (quantile function) of Student's t distribution with `df`
/// degrees of freedom, evaluated by monotone bisection on
/// [`student_t_cdf`].
///
/// # Panics
///
/// Panics if `df <= 0` or `p` is outside the open interval `(0, 1)`.
pub fn student_t_quantile(p: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    assert!(p > 0.0 && p < 1.0, "probability must lie in (0, 1)");
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }
    // Bracket the root. t quantiles for p in (0,1) and df >= 1 are well within
    // +-1e8 even for tiny tail probabilities used here.
    let mut lo = -1e8;
    let mut hi = 1e8;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile function (inverse CDF), via the Acklam rational
/// approximation refined with one Halley step.
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must lie in (0, 1)");
    // Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Complementary error function, via the Numerical Recipes Chebyshev fit
/// (absolute error below 1.2e-7, adequate for CDF evaluation here).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..10u32 {
            let expected: f64 = (1..n).map(|k| (k as f64).ln()).sum();
            assert!(
                (ln_gamma(n as f64) - expected).abs() < 1e-10,
                "ln_gamma({n}) mismatch"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1.5) = sqrt(pi)/2.
        let expected = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn betainc_symmetry_and_bounds() {
        assert_eq!(betainc_regularized(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betainc_regularized(2.0, 3.0, 1.0), 1.0);
        // I_x(a, b) = 1 - I_{1-x}(b, a)
        let a = 2.5;
        let b = 1.5;
        let x = 0.3;
        let lhs = betainc_regularized(a, b, x);
        let rhs = 1.0 - betainc_regularized(b, a, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn betainc_uniform_case_is_identity() {
        // I_x(1, 1) = x.
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            assert!((betainc_regularized(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }

    #[test]
    fn student_t_cdf_is_symmetric() {
        for &df in &[1.0, 4.0, 34.0, 100.0] {
            for &t in &[0.5, 1.0, 2.0, 3.5] {
                let upper = student_t_cdf(t, df);
                let lower = student_t_cdf(-t, df);
                assert!((upper + lower - 1.0).abs() < 1e-10);
            }
        }
        assert!((student_t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn student_t_quantile_matches_known_values() {
        // Two-sided 95% critical values from standard t tables.
        let cases = [(4.0, 2.776), (9.0, 2.262), (34.0, 2.032), (1.0, 12.706)];
        for (df, expected) in cases {
            let q = student_t_quantile(0.975, df);
            assert!(
                (q - expected).abs() < 2e-3,
                "df={df}: got {q}, expected {expected}"
            );
        }
    }

    #[test]
    fn student_t_quantile_roundtrips_cdf() {
        for &df in &[3.0, 10.0, 34.0] {
            for &p in &[0.05, 0.3, 0.5, 0.9, 0.975] {
                let t = student_t_quantile(p, df);
                assert!((student_t_cdf(t, df) - p).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
    }

    #[test]
    fn normal_quantile_roundtrips() {
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn t_converges_to_normal_for_large_df() {
        let t_q = student_t_quantile(0.975, 10_000.0);
        let n_q = normal_quantile(0.975);
        assert!((t_q - n_q).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn quantile_rejects_bad_probability() {
        student_t_quantile(1.0, 5.0);
    }
}
