//! Model-quality metrics.
//!
//! The paper quantifies heuristic quality with the Root Mean Squared Error of
//! predicted runtimes over a held-out test set (Equation 1) and aggregates
//! per-benchmark speed-ups with a geometric mean (Table 1 / Figure 5).

use crate::{Result, StatsError};

/// Root Mean Squared Error between predictions and observations
/// (Equation 1 of the paper).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when the slices are empty and
/// [`StatsError::LengthMismatch`] when they differ in length.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), alic_stats::StatsError> {
/// let rmse = alic_stats::rmse(&[1.0, 2.0, 3.0], &[1.0, 2.0, 5.0])?;
/// assert!((rmse - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn rmse(predicted: &[f64], observed: &[f64]) -> Result<f64> {
    validate_pair(predicted, observed)?;
    let sum_sq: f64 = predicted
        .iter()
        .zip(observed)
        .map(|(p, o)| (p - o) * (p - o))
        .sum();
    Ok((sum_sq / predicted.len() as f64).sqrt())
}

/// Mean Absolute Error between predictions and observations (used in the
/// motivation study, Figure 1).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when the slices are empty and
/// [`StatsError::LengthMismatch`] when they differ in length.
pub fn mae(predicted: &[f64], observed: &[f64]) -> Result<f64> {
    validate_pair(predicted, observed)?;
    let sum_abs: f64 = predicted
        .iter()
        .zip(observed)
        .map(|(p, o)| (p - o).abs())
        .sum();
    Ok(sum_abs / predicted.len() as f64)
}

/// Mean absolute deviation of a sample from its own mean.
///
/// This is the statistic used in the Figure 1 motivation experiment, where
/// the "error of a sample plan" for a configuration is the expected absolute
/// deviation of the sub-sampled mean from the full 35-observation mean.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when `values` is empty.
pub fn mean_absolute_deviation(values: &[f64], reference: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(values.iter().map(|v| (v - reference).abs()).sum::<f64>() / values.len() as f64)
}

/// Geometric mean of strictly positive values (Table 1's aggregate speed-up).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when `values` is empty and
/// [`StatsError::NonFiniteInput`] when any value is non-positive or
/// non-finite (the geometric mean is undefined there).
pub fn geometric_mean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if values.iter().any(|v| !v.is_finite() || *v <= 0.0) {
        return Err(StatsError::NonFiniteInput);
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Ok((log_sum / values.len() as f64).exp())
}

/// Maximum absolute error between predictions and observations.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when the slices are empty and
/// [`StatsError::LengthMismatch`] when they differ in length.
pub fn max_absolute_error(predicted: &[f64], observed: &[f64]) -> Result<f64> {
    validate_pair(predicted, observed)?;
    Ok(predicted
        .iter()
        .zip(observed)
        .map(|(p, o)| (p - o).abs())
        .fold(0.0, f64::max))
}

fn validate_pair(left: &[f64], right: &[f64]) -> Result<()> {
    if left.is_empty() || right.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if left.len() != right.len() {
        return Err(StatsError::LengthMismatch {
            left: left.len(),
            right: right.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_perfect_prediction_is_zero() {
        let y = [1.5, 2.5, 3.5];
        assert_eq!(rmse(&y, &y).unwrap(), 0.0);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        let pred = [2.0, 3.0, 4.0];
        let obs = [1.0, 3.0, 6.0];
        // Squared errors: 1, 0, 4 -> mean 5/3.
        assert!((rmse(&pred, &obs).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mae_is_never_larger_than_rmse() {
        let pred = [1.0, 5.0, 2.0, 8.0];
        let obs = [1.5, 4.0, 2.5, 6.0];
        assert!(mae(&pred, &obs).unwrap() <= rmse(&pred, &obs).unwrap() + 1e-12);
    }

    #[test]
    fn errors_reject_mismatched_lengths() {
        assert_eq!(
            rmse(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { left: 1, right: 2 })
        );
        assert_eq!(mae(&[], &[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn geometric_mean_of_speedups() {
        // Example from the paper's shape: a mix of small and large speed-ups.
        let speedups = [
            0.29, 13.93, 3.59, 7.07, 23.52, 26.0, 3.69, 3.55, 3.62, 1.11, 1.18,
        ];
        let gm = geometric_mean(&speedups).unwrap();
        assert!(
            gm > 3.0 && gm < 5.0,
            "geometric mean {gm} out of expected band"
        );
    }

    #[test]
    fn geometric_mean_rejects_nonpositive() {
        assert_eq!(geometric_mean(&[1.0, 0.0]), Err(StatsError::NonFiniteInput));
        assert_eq!(geometric_mean(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn geometric_mean_of_constant_is_constant() {
        assert!((geometric_mean(&[4.0; 7]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_absolute_deviation_of_symmetric_sample() {
        let values = [9.0, 11.0];
        assert_eq!(mean_absolute_deviation(&values, 10.0).unwrap(), 1.0);
    }

    #[test]
    fn max_absolute_error_picks_worst_point() {
        let pred = [1.0, 2.0, 3.0];
        let obs = [1.1, 5.0, 3.0];
        assert!((max_absolute_error(&pred, &obs).unwrap() - 3.0).abs() < 1e-12);
    }
}
