//! Unified retry/timeout/backoff policy.
//!
//! Every retry loop in the workspace used to roll its own backoff — the
//! ledger slept `1 << attempt` milliseconds with no cap and no jitter, the
//! serve engine computed its `retry-after-ms` hint with an unrelated shift —
//! which made retry behaviour impossible to audit or to reproduce under the
//! fault plane. This module replaces all of them with one [`RetryPolicy`]:
//! capped exponential backoff with *deterministic* jitter.
//!
//! # Determinism
//!
//! Jitter is drawn from the same substream machinery as the fault plane
//! ([`crate::fault`]): the delay for the *k*-th sleep at a [`PolicySite`] is
//! a pure function of `(fault-plan seed, site, k)`. A chaos run's sleep
//! schedule is therefore exactly as reproducible as its fault pattern; with
//! no plan installed the seed defaults to 0 and the schedule is still fixed.
//!
//! # Sites
//!
//! [`PolicySite`] labels the retrying call-sites, mirroring
//! [`crate::fault::FaultSite`] for injection points: stable discriminants
//! key the jitter substreams and the per-site sleep counters surfaced by
//! [`sleeps`] / [`sleeps_at`] (the serve daemon's `health` verb reports the
//! total).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::fault;
use crate::rng::SmallRng;

/// Stream label mixed into the fault-plan seed so policy jitter draws never
/// collide with fault-plane rolls for the same (site, invocation) pair.
const POLICY_STREAM: u64 = 0x706f_6c69_6379_0000; // "policy"

/// The retrying call-sites in the stack.
///
/// Discriminants are stable identifiers: they key the jitter substreams and
/// the per-site sleep counters, so reordering variants would change every
/// deterministic sleep schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum PolicySite {
    /// Ledger atomic writes (`write_atomic` / `write_verified`).
    LedgerWrite = 0,
    /// Serve engine load-shedding `retry-after-ms` hints.
    ServeHint = 1,
    /// Serve engine health-probe writes (ladder promotion).
    HealthProbe = 2,
}

/// Number of distinct policy sites.
pub const POLICY_SITE_COUNT: usize = 3;

impl PolicySite {
    /// Stable index of this site (also its jitter substream label).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable site name.
    pub fn name(self) -> &'static str {
        match self {
            PolicySite::LedgerWrite => "ledger-write",
            PolicySite::ServeHint => "serve-hint",
            PolicySite::HealthProbe => "health-probe",
        }
    }
}

/// Per-site invocation counters: each performed backoff sleep consumes one
/// jitter-substream index, so serial re-runs reproduce the same schedule.
static INVOCATIONS: [AtomicU64; POLICY_SITE_COUNT] =
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
/// Per-site counters of sleeps actually performed (observability).
static SLEEPS: [AtomicU64; POLICY_SITE_COUNT] =
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

/// Total backoff sleeps performed by all policies in this process.
pub fn sleeps() -> u64 {
    SLEEPS.iter().map(|c| c.load(Ordering::Relaxed)).sum()
}

/// Backoff sleeps performed at one site.
pub fn sleeps_at(site: PolicySite) -> u64 {
    SLEEPS[site.index()].load(Ordering::Relaxed)
}

/// A capped-exponential retry/backoff policy with deterministic jitter.
///
/// Attempt *k* (1-based) sleeps `min(base · 2^(k-1), cap)` before running,
/// scaled by a jitter factor in `[1 − jitter/2, 1 + jitter/2)` drawn from
/// the fault-plan substream for the site, then clamped to `cap` again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (the first attempt plus `attempts - 1` retries).
    pub attempts: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Jitter width as a fraction of the delay (0.0 = none, 0.5 = ±25%).
    pub jitter: f64,
}

impl RetryPolicy {
    /// Ledger atomic writes: 5 attempts, 1 ms → 16 ms, ±25% jitter.
    pub const LEDGER: RetryPolicy = RetryPolicy {
        attempts: 5,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(16),
        jitter: 0.5,
    };

    /// Serve load-shedding hints: 50 ms → 1600 ms, no jitter (clients rely
    /// on the hint sequence being monotone across consecutive sheds).
    pub const SERVE_HINT: RetryPolicy = RetryPolicy {
        attempts: 1,
        base: Duration::from_millis(50),
        cap: Duration::from_millis(1600),
        jitter: 0.0,
    };

    /// The un-jittered delay before attempt `attempt` (1-based); attempt 0
    /// (the first try) never sleeps.
    pub fn delay(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let shift = (attempt - 1).min(20);
        let raw = self.base.saturating_mul(1u32 << shift);
        raw.min(self.cap)
    }

    /// The deterministic jittered delay for the `invocation`-th sleep at
    /// `site` before attempt `attempt` — a pure function of the fault-plan
    /// seed (0 when no plan is installed), the site, and the invocation.
    pub fn jittered_delay(&self, site: PolicySite, attempt: u32, invocation: u64) -> Duration {
        let raw = self.delay(attempt);
        if self.jitter <= 0.0 || raw.is_zero() {
            return raw;
        }
        let seed = fault::plan_seed().unwrap_or(0) ^ POLICY_STREAM;
        let mut rng = SmallRng::substream(seed, site.index() as u64, invocation);
        let unit = rng.gen_range_f64(0.0, 1.0);
        let factor = 1.0 - self.jitter * 0.5 + self.jitter * unit;
        raw.mul_f64(factor).min(self.cap)
    }

    /// Sleeps the jittered delay before retry attempt `attempt` (1-based),
    /// consuming one invocation index at `site`.
    pub fn backoff(&self, site: PolicySite, attempt: u32) {
        let invocation = INVOCATIONS[site.index()].fetch_add(1, Ordering::Relaxed);
        let delay = self.jittered_delay(site, attempt, invocation);
        SLEEPS[site.index()].fetch_add(1, Ordering::Relaxed);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    /// Runs `op` up to `attempts` times, backing off (with deterministic
    /// jitter at `site`) before each retry. Returns the first success or the
    /// last error. `op` receives the 0-based attempt number.
    pub fn run<T, E>(
        &self,
        site: PolicySite,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let attempts = self.attempts.max(1);
        let mut last = match op(0) {
            Ok(v) => return Ok(v),
            Err(e) => e,
        };
        for attempt in 1..attempts {
            self.backoff(site, attempt);
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// The `retry-after-ms` hint for the `streak`-th consecutive shed
    /// (1-based): the un-jittered delay, in milliseconds. Monotone
    /// non-decreasing in `streak` and capped at `cap`.
    pub fn hint_ms(&self, streak: u32) -> u64 {
        self.delay(streak.max(1)).as_millis() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_doubles_from_base_and_saturates_at_cap() {
        let p = RetryPolicy::LEDGER;
        assert_eq!(p.delay(0), Duration::ZERO);
        assert_eq!(p.delay(1), Duration::from_millis(1));
        assert_eq!(p.delay(2), Duration::from_millis(2));
        assert_eq!(p.delay(3), Duration::from_millis(4));
        assert_eq!(p.delay(4), Duration::from_millis(8));
        assert_eq!(p.delay(5), Duration::from_millis(16));
        assert_eq!(p.delay(6), Duration::from_millis(16));
        assert_eq!(p.delay(60), Duration::from_millis(16));
    }

    #[test]
    fn hint_sequence_matches_the_historic_shed_schedule() {
        let p = RetryPolicy::SERVE_HINT;
        let hints: Vec<u64> = (1..=8).map(|s| p.hint_ms(s)).collect();
        assert_eq!(hints, vec![50, 100, 200, 400, 800, 1600, 1600, 1600]);
        // streak 0 is treated as the first shed, never a zero hint
        assert_eq!(p.hint_ms(0), 50);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::LEDGER;
        for attempt in 1..=6u32 {
            for invocation in 0..32u64 {
                let a = p.jittered_delay(PolicySite::LedgerWrite, attempt, invocation);
                let b = p.jittered_delay(PolicySite::LedgerWrite, attempt, invocation);
                assert_eq!(a, b, "jitter must be a pure function of (site, k)");
                let raw = p.delay(attempt);
                assert!(a >= raw.mul_f64(1.0 - p.jitter * 0.5));
                assert!(a <= p.cap);
            }
        }
        // Distinct invocations actually vary the delay.
        let d0 = p.jittered_delay(PolicySite::LedgerWrite, 3, 0);
        let any_different =
            (1..16u64).any(|k| p.jittered_delay(PolicySite::LedgerWrite, 3, k) != d0);
        assert!(any_different, "jitter should vary across invocations");
    }

    #[test]
    fn zero_jitter_policies_are_exactly_the_raw_delay() {
        let p = RetryPolicy::SERVE_HINT;
        for attempt in 1..=6u32 {
            assert_eq!(
                p.jittered_delay(PolicySite::ServeHint, attempt, 7),
                p.delay(attempt)
            );
        }
    }

    #[test]
    fn run_retries_until_success_and_reports_last_error() {
        let p = RetryPolicy {
            attempts: 4,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            jitter: 0.0,
        };
        let mut calls = 0u32;
        let ok: Result<u32, &str> = p.run(PolicySite::LedgerWrite, |attempt| {
            calls += 1;
            if attempt >= 2 {
                Ok(attempt)
            } else {
                Err("transient")
            }
        });
        assert_eq!(ok, Ok(2));
        assert_eq!(calls, 3);

        let before = sleeps_at(PolicySite::LedgerWrite);
        let err: Result<(), &str> = p.run(PolicySite::LedgerWrite, |_| Err("still down"));
        assert_eq!(err, Err("still down"));
        assert_eq!(sleeps_at(PolicySite::LedgerWrite), before + 3);
    }
}
