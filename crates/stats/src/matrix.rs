//! A small dense, row-major matrix type.
//!
//! Only the operations needed by the Gaussian-process comparison model are
//! provided: construction, indexing, multiplication, transpose and
//! symmetric-positive-definite solves via [`crate::cholesky`]. This keeps the
//! workspace free of an external linear-algebra dependency.

use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// Dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use alic_stats::Matrix;
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `rows` is empty and
    /// [`StatsError::LengthMismatch`] when rows have inconsistent widths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(StatsError::LengthMismatch {
                    left: cols,
                    right: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a square matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Returns row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(StatsError::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * out.cols + j] += a * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(StatsError::DimensionMismatch {
                expected: self.cols,
                actual: v.len(),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Adds `value` to every diagonal entry (used for jitter/nugget terms).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, value: f64) {
        assert_eq!(
            self.rows, self.cols,
            "add_diagonal requires a square matrix"
        );
        for i in 0..self.rows {
            self.data[i * self.cols + i] += value;
        }
    }

    /// Whether the matrix is (approximately) symmetric.
    pub fn is_symmetric(&self, tolerance: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tolerance {
                    return false;
                }
            }
        }
        true
    }
}

/// Dot product of two equally long vectors.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] when the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x * y).sum())
}

/// Squared Euclidean distance between two equally long vectors.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] when the lengths differ.
pub fn squared_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(StatsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_dimensions() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(StatsError::DimensionMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn transpose_twice_is_identity_transform() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0], vec![2.0, 0.5]]).unwrap();
        let v = vec![3.0, 4.0];
        assert_eq!(a.matvec(&v).unwrap(), vec![-1.0, 8.0]);
    }

    #[test]
    fn add_diagonal_adds_jitter() {
        let mut a = Matrix::identity(3);
        a.add_diagonal(0.5);
        for i in 0..3 {
            assert_eq!(a.get(i, i), 1.5);
        }
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let ns = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn dot_and_distance() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), 11.0);
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 25.0);
        assert!(dot(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_panics_out_of_bounds() {
        Matrix::zeros(2, 2).get(2, 0);
    }
}
