//! Flat row-major feature storage.
//!
//! The learning loop handles thousands of feature vectors per iteration
//! (candidate sets, reference sets, the training pool, the test set). Storing
//! them as `Vec<Vec<f64>>` costs one heap allocation per vector and scatters
//! the rows across the heap; the per-iteration clones of candidate subsets
//! then multiply that cost. [`FeatureMatrix`] stores all rows contiguously in
//! one flat row-major buffer, hands out `&[f64]` row views for free, and lets
//! candidate sets be described as index gathers into the pool instead of
//! fresh allocations.
//!
//! This differs from [`crate::Matrix`] on purpose: `Matrix` is a
//! linear-algebra operand (multiplication, Cholesky), while `FeatureMatrix`
//! is an append-only row store optimized for the surrogate hot path.

use serde::{Deserialize, Serialize};

use crate::{Result, StatsError};

/// A contiguous row-major store of equally long feature vectors.
///
/// # Examples
///
/// ```
/// use alic_stats::FeatureMatrix;
/// let mut m = FeatureMatrix::new(2);
/// m.push_row(&[0.0, 1.0]);
/// m.push_row(&[2.0, 3.0]);
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.row(1), &[2.0, 3.0]);
/// let views: Vec<&[f64]> = m.gather([1usize, 0].iter().copied());
/// assert_eq!(views[0], &[2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    dim: usize,
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// Creates an empty matrix whose rows will have `dim` features.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        FeatureMatrix {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty matrix with capacity reserved for `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        FeatureMatrix {
            dim,
            data: Vec::with_capacity(dim * rows),
        }
    }

    /// Builds a matrix by copying a slice of row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `rows` is empty or the first
    /// row has no features, and [`StatsError::LengthMismatch`] when rows have
    /// inconsistent widths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let dim = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            if row.len() != dim {
                return Err(StatsError::LengthMismatch {
                    left: dim,
                    right: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(FeatureMatrix { dim, data })
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the matrix dimension.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.dim,
            "row has {} features, matrix stores {}",
            row.len(),
            self.dim
        );
        self.data.extend_from_slice(row);
    }

    /// Number of features per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `index` as a slice view.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn row(&self, index: usize) -> &[f64] {
        assert!(index < self.len(), "row index out of bounds");
        &self.data[index * self.dim..(index + 1) * self.dim]
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(col < self.dim, "column index out of bounds");
        self.row(row)[col]
    }

    /// Iterates over all rows in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// All rows as a vector of slice views (the form the batch scoring APIs
    /// consume).
    pub fn row_views(&self) -> Vec<&[f64]> {
        self.rows().collect()
    }

    /// Row views for the given indices, in order — a zero-copy "candidate
    /// set" over this pool.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather<I: IntoIterator<Item = usize>>(&self, indices: I) -> Vec<&[f64]> {
        indices.into_iter().map(|i| self.row(i)).collect()
    }

    /// The underlying flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Removes all rows, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Shortens the matrix to at most `rows` rows, keeping the allocation.
    /// Has no effect when the matrix already holds `rows` rows or fewer.
    pub fn truncate(&mut self, rows: usize) {
        self.data.truncate(rows * self.dim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut m = FeatureMatrix::new(3);
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.dim(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = FeatureMatrix::from_rows(&rows).unwrap();
        assert_eq!(m.len(), 3);
        let collected: Vec<Vec<f64>> = m.rows().map(<[f64]>::to_vec).collect();
        assert_eq!(collected, rows);
    }

    #[test]
    fn from_rows_rejects_bad_shapes() {
        assert_eq!(
            FeatureMatrix::from_rows(&[]).unwrap_err(),
            StatsError::EmptyInput
        );
        assert_eq!(
            FeatureMatrix::from_rows(&[vec![]]).unwrap_err(),
            StatsError::EmptyInput
        );
        assert!(matches!(
            FeatureMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]),
            Err(StatsError::LengthMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn gather_returns_zero_copy_views() {
        let m = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let views = m.gather([2usize, 0].iter().copied());
        assert_eq!(views, vec![&[2.0][..], &[0.0][..]]);
        // The views alias the flat buffer, not copies of it.
        assert!(std::ptr::eq(views[1].as_ptr(), m.as_slice().as_ptr()));
    }

    #[test]
    fn row_views_match_rows_iterator() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row_views(), m.rows().collect::<Vec<_>>());
    }

    #[test]
    fn clear_keeps_dimension() {
        let mut m = FeatureMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.dim(), 2);
        m.push_row(&[7.0, 8.0]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn truncate_drops_trailing_rows_only() {
        let mut m =
            FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        m.truncate(5);
        assert_eq!(m.len(), 3);
        m.truncate(1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "row index out of bounds")]
    fn row_panics_out_of_bounds() {
        FeatureMatrix::new(1).row(0);
    }

    #[test]
    #[should_panic(expected = "features")]
    fn push_row_rejects_wrong_width() {
        FeatureMatrix::new(2).push_row(&[1.0]);
    }
}
