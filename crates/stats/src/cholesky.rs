//! Cholesky decomposition and symmetric-positive-definite solves.
//!
//! The Gaussian-process surrogate needs `K⁻¹ y`, batched `L⁻¹ K*` solves and
//! log determinants of kernel matrices, and — because the active-learning
//! loop appends one observation per iteration — an **incremental rank-1
//! extension** of an existing factorization.
//!
//! # Layout and cost
//!
//! The factor is stored packed: row `i` of the lower triangle occupies the
//! contiguous slice `data[i(i+1)/2 .. i(i+1)/2 + i + 1]`. Every inner kernel
//! (factorization, forward/backward substitution, row append) is a dot
//! product over two contiguous slices, which keeps the hot loops in cache
//! and lets the compiler vectorize them. The batched solve
//! ([`forward_substitute_batch`](Cholesky::forward_substitute_batch)) blocks
//! over right-hand sides: each factor row is loaded once and applied to the
//! whole block, instead of re-walking the factor per right-hand side.
//!
//! # Incremental extension
//!
//! [`append_row`](Cholesky::append_row) extends an `n × n` factorization to
//! `(n+1) × (n+1)` in `O(n²)`: the new off-diagonal row is one forward
//! substitution and the new diagonal is a Schur complement. The bordered
//! (row-at-a-time) factorization used by [`decompose`](Cholesky::decompose)
//! computes each row with **exactly the operations `append_row` performs**,
//! so growing a factor one row at a time yields bit-identical results to a
//! cold factorization of the final matrix — the property the incremental
//! Gaussian process relies on.

use crate::matrix::Matrix;
use crate::{Result, StatsError};

/// Dot product over two equally long slices, accumulated left to right.
///
/// All factorization and substitution kernels go through this one function
/// so their rounding behaviour is identical across the cold and incremental
/// code paths.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0.0;
    for (x, y) in a.iter().zip(b) {
        sum += x * y;
    }
    sum
}

#[inline]
fn row_offset(i: usize) -> usize {
    i * (i + 1) / 2
}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`, stored packed.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    n: usize,
    /// Packed row-major lower triangle (row `i` has `i + 1` entries).
    data: Vec<f64>,
}

impl Cholesky {
    /// Decomposes a symmetric positive-definite matrix. Only the lower
    /// triangle of the input is read.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] for non-square input and
    /// [`StatsError::NotPositiveDefinite`] when a non-positive pivot is
    /// encountered.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), alic_stats::StatsError> {
    /// use alic_stats::{cholesky::Cholesky, Matrix};
    /// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]])?;
    /// let chol = Cholesky::decompose(&a)?;
    /// let x = chol.solve(&[2.0, 3.0])?;
    /// // Verify A x = b.
    /// let b = a.matvec(&x)?;
    /// assert!((b[0] - 2.0).abs() < 1e-10 && (b[1] - 3.0).abs() < 1e-10);
    /// # Ok(())
    /// # }
    /// ```
    pub fn decompose(matrix: &Matrix) -> Result<Self> {
        if matrix.rows() != matrix.cols() {
            return Err(StatsError::DimensionMismatch {
                expected: matrix.rows(),
                actual: matrix.cols(),
            });
        }
        let n = matrix.rows();
        let mut data = Vec::with_capacity(row_offset(n));
        for i in 0..n {
            data.extend_from_slice(&matrix.row(i)[..=i]);
        }
        Self::decompose_packed(n, data)
    }

    /// Decomposes a matrix given as its packed lower triangle (row `i` holds
    /// entries `(i, 0..=i)`), factorizing in place without a dense copy.
    ///
    /// This is the entry point for callers that already maintain a packed
    /// kernel-row cache (the Gaussian process).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `data.len()` is not
    /// `n(n+1)/2` and [`StatsError::NotPositiveDefinite`] when a
    /// non-positive pivot is encountered.
    pub fn decompose_packed(n: usize, mut data: Vec<f64>) -> Result<Self> {
        if data.len() != row_offset(n) {
            return Err(StatsError::DimensionMismatch {
                expected: row_offset(n),
                actual: data.len(),
            });
        }
        // Bordered factorization: row i is produced from the already-final
        // rows above it by exactly the operations `append_row` performs.
        for i in 0..n {
            let (head, tail) = data.split_at_mut(row_offset(i));
            let row_i = &mut tail[..=i];
            for j in 0..i {
                let row_j = &head[row_offset(j)..row_offset(j) + j + 1];
                let s = dot(&row_i[..j], &row_j[..j]);
                row_i[j] = (row_i[j] - s) / row_j[j];
            }
            let d = row_i[i] - dot(&row_i[..i], &row_i[..i]);
            if d <= 0.0 || !d.is_finite() {
                return Err(StatsError::NotPositiveDefinite);
            }
            row_i[i] = d.sqrt();
        }
        Ok(Cholesky { n, data })
    }

    /// The packed row-major lower triangle of the factor `L` (row `i` holds
    /// entries `(i, 0..=i)`), for checkpointing codecs that serialize a
    /// factorization verbatim.
    pub fn packed(&self) -> &[f64] {
        &self.data
    }

    /// Reassembles a factorization from a [`packed`](Cholesky::packed)
    /// snapshot **without** re-factorizing: `data` is trusted to already be
    /// a valid lower-triangular factor, so the round-trip is bit-exact even
    /// where a fresh decomposition would round differently.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `data.len()` is not
    /// `n(n+1)/2`.
    pub fn from_packed_factor(n: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != row_offset(n) {
            return Err(StatsError::DimensionMismatch {
                expected: row_offset(n),
                actual: data.len(),
            });
        }
        Ok(Cholesky { n, data })
    }

    /// Extends the factorization of an `n × n` matrix `A` to the
    /// `(n+1) × (n+1)` matrix bordered by `row`: `row[..n]` holds the new
    /// off-diagonal entries `A[n][0..n]` and `row[n]` the new diagonal entry.
    ///
    /// Runs in `O(n²)` (one forward substitution plus a Schur complement)
    /// and produces the same factor, bit for bit, as a cold
    /// [`decompose`](Cholesky::decompose) of the bordered matrix. On error
    /// the existing factorization is left untouched, so callers can fall
    /// back to a full refactorization with more jitter.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `row.len() != n + 1`
    /// and [`StatsError::NotPositiveDefinite`] when the Schur complement of
    /// the new diagonal is non-positive (the bordered matrix is numerically
    /// not positive definite).
    pub fn append_row(&mut self, row: &[f64]) -> Result<()> {
        let n = self.n;
        if row.len() != n + 1 {
            return Err(StatsError::DimensionMismatch {
                expected: n + 1,
                actual: row.len(),
            });
        }
        let mut l = Vec::with_capacity(n + 1);
        for j in 0..n {
            let row_j = self.row(j);
            let s = dot(&l[..j], &row_j[..j]);
            l.push((row[j] - s) / row_j[j]);
        }
        let d = row[n] - dot(&l, &l);
        if d <= 0.0 || !d.is_finite() {
            return Err(StatsError::NotPositiveDefinite);
        }
        l.push(d.sqrt());
        self.data.extend_from_slice(&l);
        self.n += 1;
        Ok(())
    }

    /// Rank-1 update of the factorization in place: after the call the
    /// factor corresponds to `A + v vᵀ`.
    ///
    /// Runs in `O(n²)` using the classic sequence of Givens-style rotations
    /// (LINPACK `dchud`): column `k` of the factor is rotated against the
    /// remaining tail of `v`. Since `v vᵀ` is positive semi-definite, the
    /// update of a positive-definite factor cannot fail mathematically; the
    /// error return only guards against non-finite input. This is what keeps
    /// the sparse Gaussian process's per-observation update at `O(m²)`: its
    /// information matrix `P = I + σ⁻² Φᵀ Φ` grows by one outer product per
    /// observation, and refactorizing would cost `O(m³)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `v.len() != n` and
    /// [`StatsError::NonFiniteInput`] when the update produces a non-finite
    /// pivot (only possible with non-finite input). On error the factor may
    /// be partially updated and should be rebuilt by the caller.
    pub fn rank_one_update(&mut self, v: &[f64]) -> Result<()> {
        let n = self.n;
        if v.len() != n {
            return Err(StatsError::DimensionMismatch {
                expected: n,
                actual: v.len(),
            });
        }
        let mut work = v.to_vec();
        for k in 0..n {
            let diag_index = row_offset(k) + k;
            let pivot = self.data[diag_index];
            let wk = work[k];
            let rotated = (pivot * pivot + wk * wk).sqrt();
            if rotated <= 0.0 || !rotated.is_finite() {
                return Err(StatsError::NonFiniteInput);
            }
            let c = rotated / pivot;
            let s = wk / pivot;
            self.data[diag_index] = rotated;
            for (i, w) in work.iter_mut().enumerate().skip(k + 1) {
                let index = row_offset(i) + k;
                let updated = (self.data[index] + s * *w) / c;
                self.data[index] = updated;
                *w = c * *w - s * updated;
            }
        }
        Ok(())
    }

    /// Row `i` of the packed factor (entries `(i, 0..=i)`).
    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.data[row_offset(i)..row_offset(i) + i + 1]
    }

    /// The lower-triangular factor `L` as a dense matrix (zeros above the
    /// diagonal). Intended for inspection and tests; the solves below work
    /// on the packed representation directly.
    pub fn factor(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for (j, &v) in self.row(i).iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Forward substitution `L z = b` over one right-hand side held in
    /// `z` in place.
    fn forward_in_place(&self, z: &mut [f64]) {
        for i in 0..self.n {
            let row = self.row(i);
            let s = dot(&row[..i], &z[..i]);
            z[i] = (z[i] - s) / row[i];
        }
    }

    /// Solves `A x = b` using forward then backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.n;
        if b.len() != n {
            return Err(StatsError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        let mut x = b.to_vec();
        self.forward_in_place(&mut x);
        // Backward substitution: Lᵀ x = z. Column i of L is a strided
        // gather over the packed rows below i.
        for i in (0..n).rev() {
            let mut s = x[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.data[row_offset(k) + i] * xk;
            }
            x[i] = s / self.data[row_offset(i) + i];
        }
        Ok(x)
    }

    /// Solves only the forward-substitution half, `L z = b`.
    ///
    /// Needed by the Gaussian process to compute predictive variances
    /// (`vᵀ v` with `v = L⁻¹ k*`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn forward_substitute(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(StatsError::DimensionMismatch {
                expected: self.n,
                actual: b.len(),
            });
        }
        let mut z = b.to_vec();
        self.forward_in_place(&mut z);
        Ok(z)
    }

    /// Forward substitution over a block of `count` right-hand sides stored
    /// row-major in `rhs` (`count × n`), solved in place.
    ///
    /// The factor is walked **once**: each factor row is applied to every
    /// right-hand side while it is hot in cache, which is what makes batched
    /// Gaussian-process prediction cheap. Each individual right-hand side
    /// goes through exactly the arithmetic of
    /// [`forward_substitute`](Cholesky::forward_substitute), so batched and
    /// single-point results are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `rhs.len()` is not
    /// `count * n`.
    pub fn forward_substitute_batch(&self, rhs: &mut [f64], count: usize) -> Result<()> {
        let n = self.n;
        if rhs.len() != count * n {
            return Err(StatsError::DimensionMismatch {
                expected: count * n,
                actual: rhs.len(),
            });
        }
        for i in 0..n {
            let row = self.row(i);
            for z in rhs.chunks_exact_mut(n) {
                let s = dot(&row[..i], &z[..i]);
                z[i] = (z[i] - s) / row[i];
            }
        }
        Ok(())
    }

    /// Log determinant of the original matrix, `2 Σ ln L_ii`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.n)
            .map(|i| self.data[row_offset(i) + i].ln())
            .sum::<f64>()
            * 2.0
    }

    /// Reconstructs `A = L Lᵀ` (mainly useful for testing).
    pub fn reconstruct(&self) -> Matrix {
        let l = self.factor();
        l.matmul(&l.transpose())
            .expect("factor dimensions are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 12.0, -16.0],
            vec![12.0, 37.0, -43.0],
            vec![-16.0, -43.0, 98.0],
        ])
        .unwrap()
    }

    #[test]
    fn decomposes_known_spd_matrix() {
        // Classic example with exact factor [[2,0,0],[6,1,0],[-8,5,3]].
        let chol = Cholesky::decompose(&spd_example()).unwrap();
        let l = chol.factor();
        assert!((l.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((l.get(1, 0) - 6.0).abs() < 1e-12);
        assert!((l.get(1, 1) - 1.0).abs() < 1e-12);
        assert!((l.get(2, 0) + 8.0).abs() < 1e-12);
        assert!((l.get(2, 1) - 5.0).abs() < 1e-12);
        assert!((l.get(2, 2) - 3.0).abs() < 1e-12);
        assert!((l.get(0, 1)).abs() == 0.0 && (l.get(1, 2)).abs() == 0.0);
    }

    #[test]
    fn decompose_packed_matches_dense_decompose() {
        let a = spd_example();
        let packed: Vec<f64> = (0..3).flat_map(|i| a.row(i)[..=i].to_vec()).collect();
        let from_packed = Cholesky::decompose_packed(3, packed).unwrap();
        let from_dense = Cholesky::decompose(&a).unwrap();
        assert_eq!(from_packed, from_dense);
        assert!(matches!(
            Cholesky::decompose_packed(3, vec![0.0; 5]),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solve_satisfies_original_system() {
        let a = spd_example();
        let chol = Cholesky::decompose(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = chol.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, yi) in b.iter().zip(&back) {
            assert!((bi - yi).abs() < 1e-9);
        }
    }

    #[test]
    fn log_determinant_matches_direct_product() {
        let chol = Cholesky::decompose(&spd_example()).unwrap();
        // det = (2*1*3)^2 = 36.
        assert!((chol.log_determinant() - 36.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_positive_definite() {
        let not_pd = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert_eq!(
            Cholesky::decompose(&not_pd).unwrap_err(),
            StatsError::NotPositiveDefinite
        );
    }

    #[test]
    fn rejects_non_square() {
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::decompose(&rect),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn forward_substitution_consistent_with_solve() {
        let a = spd_example();
        let chol = Cholesky::decompose(&a).unwrap();
        let b = vec![0.5, -1.0, 2.0];
        let z = chol.forward_substitute(&b).unwrap();
        // ||z||^2 should equal bᵀ A⁻¹ b.
        let x = chol.solve(&b).unwrap();
        let quad: f64 = b.iter().zip(&x).map(|(bi, xi)| bi * xi).sum();
        let norm: f64 = z.iter().map(|v| v * v).sum();
        assert!((quad - norm).abs() < 1e-9);
    }

    #[test]
    fn batched_forward_substitution_is_bit_identical_to_single() {
        let a = spd_example();
        let chol = Cholesky::decompose(&a).unwrap();
        let rhs_rows = [
            vec![1.0, 2.0, 3.0],
            vec![-0.5, 0.25, 4.0],
            vec![0.0, 0.0, 1.0],
        ];
        let mut flat: Vec<f64> = rhs_rows.iter().flatten().copied().collect();
        chol.forward_substitute_batch(&mut flat, 3).unwrap();
        for (r, b) in rhs_rows.iter().enumerate() {
            let single = chol.forward_substitute(b).unwrap();
            assert_eq!(&flat[r * 3..(r + 1) * 3], single.as_slice());
        }
        assert!(matches!(
            chol.forward_substitute_batch(&mut [0.0; 4], 3),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn append_row_rejects_bad_input_and_keeps_factor_intact() {
        let mut chol = Cholesky::decompose(&spd_example()).unwrap();
        let before = chol.clone();
        assert!(matches!(
            chol.append_row(&[1.0, 2.0]),
            Err(StatsError::DimensionMismatch { .. })
        ));
        // A duplicate of row 0 with the same diagonal makes the bordered
        // matrix singular: the Schur complement is exactly zero.
        assert_eq!(
            chol.append_row(&[4.0, 12.0, -16.0, 4.0]).unwrap_err(),
            StatsError::NotPositiveDefinite
        );
        assert_eq!(chol, before, "failed append must not corrupt the factor");
    }

    #[test]
    fn rank_one_update_rejects_wrong_length() {
        let mut chol = Cholesky::decompose(&spd_example()).unwrap();
        assert!(matches!(
            chol.rank_one_update(&[1.0, 2.0]),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    proptest! {
        #[test]
        fn rank_one_update_matches_cold_factorization(
            values in proptest::collection::vec(-2.0f64..2.0, 16),
            update in proptest::collection::vec(-3.0f64..3.0, 4),
        ) {
            // Random 4x4 SPD matrix A = B Bᵀ + 2 I, updated by v vᵀ.
            let b = Matrix::from_fn(4, 4, |i, j| values[i * 4 + j]);
            let mut a = b.matmul(&b.transpose()).unwrap();
            a.add_diagonal(2.0);
            let mut updated = Cholesky::decompose(&a).unwrap();
            updated.rank_one_update(&update).unwrap();
            let mut target = a.clone();
            for i in 0..4 {
                for j in 0..4 {
                    target.set(i, j, target.get(i, j) + update[i] * update[j]);
                }
            }
            let cold = Cholesky::decompose(&target).unwrap();
            for i in 0..4 {
                for j in 0..4 {
                    prop_assert!(
                        (updated.factor().get(i, j) - cold.factor().get(i, j)).abs() < 1e-9,
                        "factor mismatch at ({}, {})", i, j
                    );
                }
            }
        }

        #[test]
        fn reconstruction_roundtrips_random_spd(values in proptest::collection::vec(-2.0f64..2.0, 9)) {
            // Build SPD matrix as B Bᵀ + n I from a random 3x3 B.
            let b = Matrix::from_rows(&[
                values[0..3].to_vec(),
                values[3..6].to_vec(),
                values[6..9].to_vec(),
            ]).unwrap();
            let mut a = b.matmul(&b.transpose()).unwrap();
            a.add_diagonal(3.0);
            let chol = Cholesky::decompose(&a).unwrap();
            let back = chol.reconstruct();
            for i in 0..3 {
                for j in 0..3 {
                    prop_assert!((a.get(i, j) - back.get(i, j)).abs() < 1e-8);
                }
            }
        }

        #[test]
        fn appending_rows_is_bit_identical_to_cold_factorization(
            values in proptest::collection::vec(-2.0f64..2.0, 36),
            split in 2usize..5,
        ) {
            // Random 6x6 SPD matrix A = B Bᵀ + 4 I.
            let b = Matrix::from_fn(6, 6, |i, j| values[i * 6 + j]);
            let mut a = b.matmul(&b.transpose()).unwrap();
            a.add_diagonal(4.0);
            let cold = Cholesky::decompose(&a).unwrap();
            // Factorize the leading `split` block, then append the rest.
            let mut incremental = Cholesky::decompose_packed(
                split,
                (0..split).flat_map(|i| a.row(i)[..=i].to_vec()).collect(),
            ).unwrap();
            for i in split..6 {
                incremental.append_row(&a.row(i)[..=i]).unwrap();
            }
            // Bit-identical, not merely close: the bordered factorization
            // performs the same operations in the same order.
            prop_assert_eq!(cold, incremental);
        }
    }
}
