//! Cholesky decomposition and symmetric-positive-definite solves.
//!
//! The Gaussian-process comparison model (the "collective wisdom" model the
//! paper contrasts with dynamic trees in §3.2) needs `K⁻¹ y` and log
//! determinants of kernel matrices. A plain `LLᵀ` factorization is sufficient
//! at the sizes used in this workspace.

use crate::matrix::Matrix;
use crate::{Result, StatsError};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    factor: Matrix,
}

impl Cholesky {
    /// Decomposes a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] for non-square input and
    /// [`StatsError::NotPositiveDefinite`] when a non-positive pivot is
    /// encountered.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), alic_stats::StatsError> {
    /// use alic_stats::{cholesky::Cholesky, Matrix};
    /// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]])?;
    /// let chol = Cholesky::decompose(&a)?;
    /// let x = chol.solve(&[2.0, 3.0])?;
    /// // Verify A x = b.
    /// let b = a.matvec(&x)?;
    /// assert!((b[0] - 2.0).abs() < 1e-10 && (b[1] - 3.0).abs() < 1e-10);
    /// # Ok(())
    /// # }
    /// ```
    pub fn decompose(matrix: &Matrix) -> Result<Self> {
        if matrix.rows() != matrix.cols() {
            return Err(StatsError::DimensionMismatch {
                expected: matrix.rows(),
                actual: matrix.cols(),
            });
        }
        let n = matrix.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = matrix.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(StatsError::NotPositiveDefinite);
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { factor: l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.factor
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.factor.rows()
    }

    /// Solves `A x = b` using forward then backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(StatsError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        // Forward substitution: L z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, zk) in z.iter().enumerate().take(i) {
                sum -= self.factor.get(i, k) * zk;
            }
            z[i] = sum / self.factor.get(i, i);
        }
        // Backward substitution: Lᵀ x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for (k, xk) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.factor.get(k, i) * xk;
            }
            x[i] = sum / self.factor.get(i, i);
        }
        Ok(x)
    }

    /// Solves only the forward-substitution half, `L z = b`.
    ///
    /// Needed by the Gaussian process to compute predictive variances
    /// (`vᵀ v` with `v = L⁻¹ k*`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn forward_substitute(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(StatsError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, zk) in z.iter().enumerate().take(i) {
                sum -= self.factor.get(i, k) * zk;
            }
            z[i] = sum / self.factor.get(i, i);
        }
        Ok(z)
    }

    /// Log determinant of the original matrix, `2 Σ ln L_ii`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim())
            .map(|i| self.factor.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }

    /// Reconstructs `A = L Lᵀ` (mainly useful for testing).
    pub fn reconstruct(&self) -> Matrix {
        self.factor
            .matmul(&self.factor.transpose())
            .expect("factor dimensions are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 12.0, -16.0],
            vec![12.0, 37.0, -43.0],
            vec![-16.0, -43.0, 98.0],
        ])
        .unwrap()
    }

    #[test]
    fn decomposes_known_spd_matrix() {
        // Classic example with exact factor [[2,0,0],[6,1,0],[-8,5,3]].
        let chol = Cholesky::decompose(&spd_example()).unwrap();
        let l = chol.factor();
        assert!((l.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((l.get(1, 0) - 6.0).abs() < 1e-12);
        assert!((l.get(1, 1) - 1.0).abs() < 1e-12);
        assert!((l.get(2, 0) + 8.0).abs() < 1e-12);
        assert!((l.get(2, 1) - 5.0).abs() < 1e-12);
        assert!((l.get(2, 2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_satisfies_original_system() {
        let a = spd_example();
        let chol = Cholesky::decompose(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = chol.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, yi) in b.iter().zip(&back) {
            assert!((bi - yi).abs() < 1e-9);
        }
    }

    #[test]
    fn log_determinant_matches_direct_product() {
        let chol = Cholesky::decompose(&spd_example()).unwrap();
        // det = (2*1*3)^2 = 36.
        assert!((chol.log_determinant() - 36.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_positive_definite() {
        let not_pd = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert_eq!(
            Cholesky::decompose(&not_pd).unwrap_err(),
            StatsError::NotPositiveDefinite
        );
    }

    #[test]
    fn rejects_non_square() {
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::decompose(&rect),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn forward_substitution_consistent_with_solve() {
        let a = spd_example();
        let chol = Cholesky::decompose(&a).unwrap();
        let b = vec![0.5, -1.0, 2.0];
        let z = chol.forward_substitute(&b).unwrap();
        // ||z||^2 should equal bᵀ A⁻¹ b.
        let x = chol.solve(&b).unwrap();
        let quad: f64 = b.iter().zip(&x).map(|(bi, xi)| bi * xi).sum();
        let norm: f64 = z.iter().map(|v| v * v).sum();
        assert!((quad - norm).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn reconstruction_roundtrips_random_spd(values in proptest::collection::vec(-2.0f64..2.0, 9)) {
            // Build SPD matrix as B Bᵀ + n I from a random 3x3 B.
            let b = Matrix::from_rows(&[
                values[0..3].to_vec(),
                values[3..6].to_vec(),
                values[6..9].to_vec(),
            ]).unwrap();
            let mut a = b.matmul(&b.transpose()).unwrap();
            a.add_diagonal(3.0);
            let chol = Cholesky::decompose(&a).unwrap();
            let back = chol.reconstruct();
            for i in 0..3 {
                for j in 0..3 {
                    prop_assert!((a.get(i, j) - back.get(i, j)).abs() < 1e-8);
                }
            }
        }
    }
}
