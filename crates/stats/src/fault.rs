//! Deterministic, seeded fault-injection plane.
//!
//! Robustness work needs a fault model it can be *tested* against: "the
//! campaign survives torn writes" is only a claim until a test can tear
//! writes on demand, reproducibly. This module provides that plane for the
//! whole workspace:
//!
//! * a fixed set of [`FaultSite`]s — the places in the stack where faults
//!   can be injected (ledger I/O, unit execution, evaluator observations,
//!   GP factorization, serve-daemon connections),
//! * a [`FaultPlan`] describing, per site, an injection *rate* and an
//!   optional *budget* (maximum number of injections), parseable from the
//!   `ALIC_CHAOS=<seed>:<site>=<rate>[x<budget>],...` environment knob,
//! * a process-global activation switch ([`install`] / [`deactivate`]) with
//!   a branch-cheap [`inject`] query threaded through the instrumented
//!   sites.
//!
//! # Determinism
//!
//! Whether the *k*-th invocation of a site faults is a pure function of
//! `(plan seed, site, k)`: each query draws one uniform value from the
//! [`SmallRng`] substream keyed by site × invocation and compares it to the
//! site's rate. Re-running a serial workload under the same plan reproduces
//! the same fault pattern exactly. Under parallel execution the *assignment*
//! of invocation indices to work items depends on thread interleaving, but
//! the self-healing layers above are required to converge to byte-identical
//! output either way — that is precisely what `tests/chaos_campaign.rs`
//! asserts.
//!
//! # Budgets
//!
//! A site's budget bounds the total number of injections the plan will ever
//! perform at that site. Budgets are what make "heal completely, then
//! compare byte-for-byte" testable: bounded retry loops are guaranteed to
//! out-last a bounded adversary.
//!
//! The plane is inert unless a plan is installed (programmatically or via
//! `ALIC_CHAOS`); the fast path of [`inject`] is one relaxed atomic load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, RwLock};

use crate::rng::SmallRng;

/// The places in the stack where a fault can be injected.
///
/// The discriminants are stable identifiers: they key the per-site RNG
/// substreams, so reordering variants would silently change every fault
/// pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum FaultSite {
    /// `write_atomic` temporary-file write fails with a transient I/O error.
    WriteIo = 0,
    /// `write_atomic` tears the write: only a prefix of the payload lands.
    TornWrite = 1,
    /// `write_atomic` fails to rename the temporary file into place.
    RenameFail = 2,
    /// A campaign work unit panics mid-execution.
    UnitPanic = 3,
    /// The evaluator returns a transient error for a whole work unit.
    EvalError = 4,
    /// A single profiled observation comes back non-finite (NaN runtime).
    ObservationNan = 5,
    /// GP/SGP factorization exhausts its jitter ladder.
    JitterExhaustion = 6,
    /// A serve connection drops mid-line: the line in flight is lost and the
    /// peer sees EOF.
    ConnDrop = 7,
    /// A serve read tears: only a prefix of the line arrives before EOF.
    ShortRead = 8,
    /// A serve reply tears: only a prefix is written, then the socket errors.
    TornReply = 9,
    /// A ledger write fails with out-of-space (`ENOSPC`): the disk is full.
    Enospc = 10,
    /// A request stalls: the instrumented site sleeps long enough to trip its
    /// deadline (and the serve watchdog's grace factor).
    Stall = 11,
    /// File-descriptor exhaustion: opening or writing a file fails with
    /// `EMFILE`-style errors.
    FdLimit = 12,
}

/// Number of distinct fault sites.
pub const SITE_COUNT: usize = 13;

impl FaultSite {
    /// All sites, in identifier order.
    pub const ALL: [FaultSite; SITE_COUNT] = [
        FaultSite::WriteIo,
        FaultSite::TornWrite,
        FaultSite::RenameFail,
        FaultSite::UnitPanic,
        FaultSite::EvalError,
        FaultSite::ObservationNan,
        FaultSite::JitterExhaustion,
        FaultSite::ConnDrop,
        FaultSite::ShortRead,
        FaultSite::TornReply,
        FaultSite::Enospc,
        FaultSite::Stall,
        FaultSite::FdLimit,
    ];

    /// Stable index of this site (also its RNG substream label).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The short name used in `ALIC_CHAOS` specs.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WriteIo => "io",
            FaultSite::TornWrite => "torn",
            FaultSite::RenameFail => "rename",
            FaultSite::UnitPanic => "panic",
            FaultSite::EvalError => "eval",
            FaultSite::ObservationNan => "nan",
            FaultSite::JitterExhaustion => "jitter",
            FaultSite::ConnDrop => "conndrop",
            FaultSite::ShortRead => "shortread",
            FaultSite::TornReply => "tornreply",
            FaultSite::Enospc => "enospc",
            FaultSite::Stall => "stall",
            FaultSite::FdLimit => "fdlimit",
        }
    }

    /// Parses a short site name from an `ALIC_CHAOS` spec.
    pub fn from_name(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Injection parameters for one site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteSpec {
    /// Probability in `[0, 1]` that any given invocation faults.
    pub rate: f64,
    /// Maximum number of injections ever performed at this site
    /// (`None` = unbounded).
    pub budget: Option<u64>,
}

/// A complete description of which faults to inject and how often.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    sites: [Option<SiteSpec>; SITE_COUNT],
}

impl FaultPlan {
    /// An empty plan (no sites armed) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: [None; SITE_COUNT],
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Arms `site` with the given rate and optional injection budget.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is not a probability in `[0, 1]`.
    pub fn with_site(mut self, site: FaultSite, rate: f64, budget: Option<u64>) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate must lie in [0, 1], got {rate}"
        );
        self.sites[site.index()] = Some(SiteSpec { rate, budget });
        self
    }

    /// The spec armed at `site`, if any.
    pub fn site(&self, site: FaultSite) -> Option<SiteSpec> {
        self.sites[site.index()]
    }

    /// Whether the `invocation`-th query at `site` rolls a fault under this
    /// plan, *ignoring budgets* — the pure deterministic core of the plane.
    pub fn would_inject(&self, site: FaultSite, invocation: u64) -> bool {
        match self.sites[site.index()] {
            None => false,
            Some(spec) => {
                let mut rng = SmallRng::substream(self.seed, site.index() as u64, invocation);
                rng.gen_range_f64(0.0, 1.0) < spec.rate
            }
        }
    }

    /// Parses a `<seed>:<site>=<rate>[x<budget>],...` spec, the format of
    /// the `ALIC_CHAOS` environment variable and the campaign binary's
    /// `--chaos` flag.
    ///
    /// # Examples
    ///
    /// ```
    /// use alic_stats::fault::{FaultPlan, FaultSite};
    /// let plan = FaultPlan::parse("42:torn=0.2x5,nan=0.05").unwrap();
    /// assert_eq!(plan.seed(), 42);
    /// assert_eq!(plan.site(FaultSite::TornWrite).unwrap().budget, Some(5));
    /// assert!(plan.site(FaultSite::WriteIo).is_none());
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (seed_part, sites_part) = spec
            .split_once(':')
            .ok_or_else(|| format!("chaos spec {spec:?} is missing the '<seed>:' prefix"))?;
        let seed: u64 = seed_part
            .trim()
            .parse()
            .map_err(|_| format!("chaos seed {seed_part:?} is not a u64"))?;
        let mut plan = FaultPlan::new(seed);
        for entry in sites_part.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("chaos site entry {entry:?} is missing '='"))?;
            let site = FaultSite::from_name(name.trim()).ok_or_else(|| {
                let known: Vec<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
                format!(
                    "unknown chaos site {:?} (known sites: {})",
                    name.trim(),
                    known.join(", ")
                )
            })?;
            let (rate_part, budget) = match value.split_once('x') {
                Some((r, b)) => {
                    let budget: u64 = b
                        .trim()
                        .parse()
                        .map_err(|_| format!("chaos budget {b:?} is not a u64"))?;
                    (r, Some(budget))
                }
                None => (value, None),
            };
            let rate: f64 = rate_part
                .trim()
                .parse()
                .map_err(|_| format!("chaos rate {rate_part:?} is not a number"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("chaos rate {rate} must lie in [0, 1]"));
            }
            plan = plan.with_site(site, rate, budget);
        }
        Ok(plan)
    }
}

/// Mutable per-site state of an installed plan.
#[derive(Debug)]
struct SiteState {
    rate: f64,
    /// Remaining injections (`u64::MAX` = unbounded).
    remaining: AtomicU64,
    /// Invocation counter; each [`inject`] query consumes one index.
    invocations: AtomicU64,
    /// Total injections actually performed.
    injected: AtomicU64,
}

/// An installed plan plus its runtime counters.
#[derive(Debug)]
struct PlaneState {
    seed: u64,
    sites: [Option<SiteState>; SITE_COUNT],
}

impl PlaneState {
    fn from_plan(plan: &FaultPlan) -> PlaneState {
        PlaneState {
            seed: plan.seed,
            sites: plan.sites.map(|spec| {
                spec.map(|spec| SiteState {
                    rate: spec.rate,
                    remaining: AtomicU64::new(spec.budget.unwrap_or(u64::MAX)),
                    invocations: AtomicU64::new(0),
                    injected: AtomicU64::new(0),
                })
            }),
        }
    }
}

/// Fast-path switch: true iff a plane is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLANE: RwLock<Option<Arc<PlaneState>>> = RwLock::new(None);
static ENV_INIT: Once = Once::new();
/// Serializes tests that install a global plane (see [`exclusive`]).
static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// The environment variable that arms the plane at process start.
pub const CHAOS_ENV: &str = "ALIC_CHAOS";

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var(CHAOS_ENV) {
            if spec.trim().is_empty() {
                return;
            }
            match FaultPlan::parse(&spec) {
                Ok(plan) => install(plan),
                // A malformed chaos spec silently doing nothing would defeat
                // the point of a chaos run; fail the process loudly instead.
                Err(msg) => panic!("invalid {CHAOS_ENV} spec: {msg}"),
            }
        }
    });
}

/// Installs `plan` as the process-global fault plane.
///
/// Counters and budgets start fresh. Replaces any previously installed plan.
pub fn install(plan: FaultPlan) {
    let state = Arc::new(PlaneState::from_plan(&plan));
    let mut slot = PLANE.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(state);
    ACTIVE.store(true, Ordering::Release);
}

/// Removes the installed fault plane; [`inject`] returns `false` afterwards.
pub fn deactivate() {
    let mut slot = PLANE.write().unwrap_or_else(|e| e.into_inner());
    ACTIVE.store(false, Ordering::Release);
    *slot = None;
}

/// Whether a fault plane is currently installed (after lazy `ALIC_CHAOS`
/// initialization).
pub fn is_active() -> bool {
    init_from_env();
    ACTIVE.load(Ordering::Acquire)
}

/// Queries the plane: should the current invocation of `site` fault?
///
/// Consumes one invocation index at the site, rolls the deterministic
/// substream for it, and charges the site's budget on a hit. Returns `false`
/// always when no plane is installed — the fast path is a single relaxed
/// atomic load.
pub fn inject(site: FaultSite) -> bool {
    init_from_env();
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    let plane = {
        let slot = PLANE.read().unwrap_or_else(|e| e.into_inner());
        match &*slot {
            Some(p) => Arc::clone(p),
            None => return false,
        }
    };
    let Some(state) = &plane.sites[site.index()] else {
        return false;
    };
    let invocation = state.invocations.fetch_add(1, Ordering::Relaxed);
    let mut rng = SmallRng::substream(plane.seed, site.index() as u64, invocation);
    if rng.gen_range_f64(0.0, 1.0) >= state.rate {
        return false;
    }
    // Budget check: only a successful decrement converts the roll into an
    // injection, so a plan can never exceed its per-site budget even under
    // concurrent queries.
    if state
        .remaining
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
        .is_err()
    {
        return false;
    }
    state.injected.fetch_add(1, Ordering::Relaxed);
    true
}

/// The seed of the currently installed fault plane, if any.
///
/// Retry policies ([`crate::policy`]) key their deterministic jitter
/// substreams off this seed so that a chaos run's sleep schedule is as
/// reproducible as its fault pattern.
pub fn plan_seed() -> Option<u64> {
    init_from_env();
    let slot = PLANE.read().unwrap_or_else(|e| e.into_inner());
    slot.as_ref().map(|p| p.seed)
}

/// Total injections performed at `site` by the installed plane (0 when no
/// plane is installed or the site is unarmed).
pub fn injections(site: FaultSite) -> u64 {
    let slot = PLANE.read().unwrap_or_else(|e| e.into_inner());
    match &*slot {
        Some(plane) => plane.sites[site.index()]
            .as_ref()
            .map_or(0, |s| s.injected.load(Ordering::Relaxed)),
        None => 0,
    }
}

/// RAII guard for tests that install a global plane.
///
/// Holding the guard serializes all such tests in the process (the plane is
/// process-global state) and guarantees deactivation on drop, even on
/// panic. Every test in a binary that installs a plane must go through
/// [`exclusive`] / [`exclusive_clean`] — tests that never touch the plane
/// need no guard, but must then not share a binary with chaos tests that
/// could perturb them.
#[derive(Debug)]
pub struct ChaosGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        deactivate();
    }
}

/// Installs `plan` under the test-serialization lock; the returned guard
/// deactivates the plane when dropped.
pub fn exclusive(plan: FaultPlan) -> ChaosGuard {
    let lock = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    install(plan);
    ChaosGuard { _lock: lock }
}

/// Takes the test-serialization lock with the plane *deactivated* — for
/// fault-free baseline phases inside chaos test binaries.
pub fn exclusive_clean() -> ChaosGuard {
    let lock = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    deactivate();
    ChaosGuard { _lock: lock }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_sites_rates_and_budgets() {
        let plan = FaultPlan::parse("7:io=0.5x3, torn=1.0, jitter=0x9").unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(
            plan.site(FaultSite::WriteIo),
            Some(SiteSpec {
                rate: 0.5,
                budget: Some(3)
            })
        );
        assert_eq!(
            plan.site(FaultSite::TornWrite),
            Some(SiteSpec {
                rate: 1.0,
                budget: None
            })
        );
        assert_eq!(
            plan.site(FaultSite::JitterExhaustion),
            Some(SiteSpec {
                rate: 0.0,
                budget: Some(9)
            })
        );
        assert_eq!(plan.site(FaultSite::UnitPanic), None);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "no-colon",
            "x:io=0.5",
            "1:bogus=0.5",
            "1:io",
            "1:io=2.0",
            "1:io=0.5xq",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn rolls_are_deterministic_in_site_and_invocation() {
        let plan = FaultPlan::new(99).with_site(FaultSite::TornWrite, 0.3, None);
        let a: Vec<bool> = (0..64)
            .map(|k| plan.would_inject(FaultSite::TornWrite, k))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|k| plan.would_inject(FaultSite::TornWrite, k))
            .collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "rate 0.3 should hit within 64 rolls");
        assert!(
            a.iter().any(|&x| !x),
            "rate 0.3 should miss within 64 rolls"
        );
        // Unarmed sites never roll a fault.
        assert!(!plan.would_inject(FaultSite::WriteIo, 0));
    }

    #[test]
    fn name_roundtrip_covers_every_site() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::from_name(site.name()), Some(site));
        }
        assert_eq!(FaultSite::from_name("nonsense"), None);
    }

    #[test]
    fn connection_sites_have_stable_indices() {
        // The discriminants key the RNG substreams; these pins catch an
        // accidental reorder, which would silently change every fault
        // pattern (and every chaos test baseline) at once.
        assert_eq!(FaultSite::ConnDrop.index(), 7);
        assert_eq!(FaultSite::ShortRead.index(), 8);
        assert_eq!(FaultSite::TornReply.index(), 9);
        assert_eq!(FaultSite::Enospc.index(), 10);
        assert_eq!(FaultSite::Stall.index(), 11);
        assert_eq!(FaultSite::FdLimit.index(), 12);
        assert_eq!(FaultSite::ALL.len(), SITE_COUNT);
        let plan = FaultPlan::parse("3:conndrop=0.5x2,shortread=0.25,tornreply=1.0x1").unwrap();
        assert_eq!(
            plan.site(FaultSite::ConnDrop),
            Some(SiteSpec {
                rate: 0.5,
                budget: Some(2)
            })
        );
        assert_eq!(
            plan.site(FaultSite::TornReply),
            Some(SiteSpec {
                rate: 1.0,
                budget: Some(1)
            })
        );
    }

    #[test]
    fn global_plane_respects_rates_budgets_and_deactivation() {
        let guard = exclusive(
            FaultPlan::new(1)
                .with_site(FaultSite::EvalError, 1.0, Some(2))
                .with_site(FaultSite::UnitPanic, 0.0, None),
        );
        assert!(is_active());
        // Rate 1.0 with budget 2: exactly two injections, then dry.
        assert!(inject(FaultSite::EvalError));
        assert!(inject(FaultSite::EvalError));
        assert!(!inject(FaultSite::EvalError));
        assert_eq!(injections(FaultSite::EvalError), 2);
        // Rate 0.0 never fires; unarmed sites never fire.
        assert!(!inject(FaultSite::UnitPanic));
        assert!(!inject(FaultSite::TornWrite));
        drop(guard);
        assert!(!inject(FaultSite::EvalError));
    }

    #[test]
    fn pressure_sites_parse_and_expose_the_plan_seed() {
        let plan = FaultPlan::parse("17:enospc=0.4x3,stall=0.2,fdlimit=1.0x1").unwrap();
        assert_eq!(
            plan.site(FaultSite::Enospc),
            Some(SiteSpec {
                rate: 0.4,
                budget: Some(3)
            })
        );
        assert_eq!(
            plan.site(FaultSite::Stall),
            Some(SiteSpec {
                rate: 0.2,
                budget: None
            })
        );
        assert_eq!(
            plan.site(FaultSite::FdLimit),
            Some(SiteSpec {
                rate: 1.0,
                budget: Some(1)
            })
        );
        let guard = exclusive(plan);
        assert_eq!(plan_seed(), Some(17));
        drop(guard);
        assert_eq!(plan_seed(), None);
    }

    #[test]
    fn global_rolls_match_the_pure_plan() {
        let plan = FaultPlan::new(12345).with_site(FaultSite::WriteIo, 0.4, None);
        let expected: Vec<bool> = (0..32)
            .map(|k| plan.would_inject(FaultSite::WriteIo, k))
            .collect();
        let guard = exclusive(plan);
        let got: Vec<bool> = (0..32).map(|_| inject(FaultSite::WriteIo)).collect();
        assert_eq!(got, expected);
        drop(guard);
    }
}
