//! Random subset selection.
//!
//! Algorithm 1 of the paper repeatedly needs uniform random subsets: the
//! initial `n_init` seed examples, and the `n_c` fresh candidates drawn from
//! the not-yet-visited pool at every iteration. These helpers provide
//! reproducible sampling with and without replacement over index ranges and
//! slices.

use rand::seq::SliceRandom;
use rand::Rng;

/// Draws `count` distinct indices uniformly at random from `0..population`.
///
/// When `count >= population` all indices are returned (shuffled).
///
/// # Examples
///
/// ```
/// let mut rng = alic_stats::rng::seeded_rng(1);
/// let picked = alic_stats::sampling::sample_indices(&mut rng, 100, 5);
/// assert_eq!(picked.len(), 5);
/// assert!(picked.iter().all(|&i| i < 100));
/// ```
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, population: usize, count: usize) -> Vec<usize> {
    if count >= population {
        let mut all: Vec<usize> = (0..population).collect();
        all.shuffle(rng);
        return all;
    }
    // Floyd's algorithm: O(count) expected memory, no full shuffle.
    let mut chosen = std::collections::HashSet::with_capacity(count);
    let mut result = Vec::with_capacity(count);
    for j in (population - count)..population {
        let t = rng.gen_range(0..=j);
        if chosen.insert(t) {
            result.push(t);
        } else {
            chosen.insert(j);
            result.push(j);
        }
    }
    result.shuffle(rng);
    result
}

/// Draws `count` distinct elements from `items` uniformly at random,
/// returning clones.
pub fn sample_from<T: Clone, R: Rng + ?Sized>(rng: &mut R, items: &[T], count: usize) -> Vec<T> {
    sample_indices(rng, items.len(), count)
        .into_iter()
        .map(|i| items[i].clone())
        .collect()
}

/// Splits `0..population` into two disjoint shuffled index sets of sizes
/// `first` and `population - first` (used for train/test splits).
///
/// # Panics
///
/// Panics if `first > population`.
pub fn split_indices<R: Rng + ?Sized>(
    rng: &mut R,
    population: usize,
    first: usize,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        first <= population,
        "cannot take {first} of {population} items"
    );
    let mut all: Vec<usize> = (0..population).collect();
    all.shuffle(rng);
    let second = all.split_off(first);
    (all, second)
}

/// Reservoir-samples `count` items from an iterator of unknown length.
pub fn reservoir_sample<T, I, R>(rng: &mut R, iter: I, count: usize) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng + ?Sized,
{
    let mut reservoir: Vec<T> = Vec::with_capacity(count);
    for (seen, item) in iter.into_iter().enumerate() {
        if reservoir.len() < count {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=seen);
            if j < count {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = seeded_rng(11);
        let picked = sample_indices(&mut rng, 1000, 50);
        let unique: HashSet<_> = picked.iter().copied().collect();
        assert_eq!(unique.len(), 50);
        assert!(picked.iter().all(|&i| i < 1000));
    }

    #[test]
    fn oversampling_returns_whole_population() {
        let mut rng = seeded_rng(2);
        let picked = sample_indices(&mut rng, 5, 10);
        let unique: HashSet<_> = picked.iter().copied().collect();
        assert_eq!(unique.len(), 5);
    }

    #[test]
    fn sampling_is_reproducible_for_a_seed() {
        let a = sample_indices(&mut seeded_rng(7), 100, 10);
        let b = sample_indices(&mut seeded_rng(7), 100, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn sample_from_clones_selected_items() {
        let items: Vec<String> = (0..20).map(|i| format!("cfg{i}")).collect();
        let mut rng = seeded_rng(3);
        let picked = sample_from(&mut rng, &items, 4);
        assert_eq!(picked.len(), 4);
        assert!(picked.iter().all(|p| items.contains(p)));
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let mut rng = seeded_rng(5);
        let (train, test) = split_indices(&mut rng, 10_000, 7_500);
        assert_eq!(train.len(), 7_500);
        assert_eq!(test.len(), 2_500);
        let train_set: HashSet<_> = train.iter().copied().collect();
        assert!(test.iter().all(|i| !train_set.contains(i)));
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn split_rejects_oversized_first_part() {
        split_indices(&mut seeded_rng(0), 3, 4);
    }

    #[test]
    fn reservoir_sample_has_requested_size() {
        let mut rng = seeded_rng(9);
        let sample = reservoir_sample(&mut rng, 0..10_000, 32);
        assert_eq!(sample.len(), 32);
        let unique: HashSet<_> = sample.iter().copied().collect();
        assert_eq!(unique.len(), 32);
    }

    #[test]
    fn reservoir_sample_of_short_stream_keeps_everything() {
        let mut rng = seeded_rng(9);
        let sample = reservoir_sample(&mut rng, 0..3, 10);
        assert_eq!(sample, vec![0, 1, 2]);
    }

    #[test]
    fn sample_indices_is_roughly_uniform() {
        // Draw many small samples and check every index is hit.
        let mut rng = seeded_rng(123);
        let mut counts = [0usize; 10];
        for _ in 0..2000 {
            for i in sample_indices(&mut rng, 10, 3) {
                counts[i] += 1;
            }
        }
        // Expectation is 600 per index; allow generous slack.
        assert!(counts.iter().all(|&c| c > 400 && c < 800), "{counts:?}");
    }

    proptest! {
        #[test]
        fn prop_sample_size_and_range(population in 1usize..500, count in 0usize..100, seed in 0u64..1000) {
            let mut rng = seeded_rng(seed);
            let picked = sample_indices(&mut rng, population, count);
            prop_assert_eq!(picked.len(), count.min(population));
            let unique: HashSet<_> = picked.iter().copied().collect();
            prop_assert_eq!(unique.len(), picked.len());
            prop_assert!(picked.iter().all(|&i| i < population));
        }
    }
}
