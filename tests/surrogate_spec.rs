//! Integration tests of the model-agnostic experiment layer: the full
//! Table 1 / Figure 6 protocol must run against any surrogate family
//! selected through a [`SurrogateSpec`], not just the paper's dynamic tree.

use alic::core::experiment::{compare_plans, ComparisonOutcome};
use alic::core::prelude::*;
use alic::experiments::Scale;
use alic::model::SurrogateSpec;
use alic::sim::spapt::{spapt_kernel, SpaptKernel};

fn quick_outcome(model: SurrogateSpec) -> ComparisonOutcome {
    let config = Scale::Quick.comparison_config_for(model);
    compare_plans(&spapt_kernel(SpaptKernel::Mvt), &config)
        .unwrap_or_else(|e| panic!("{} comparison failed: {e}", config.model))
}

fn assert_protocol_invariants(model: SurrogateSpec, outcome: &ComparisonOutcome) {
    assert_eq!(outcome.kernel, "mvt");
    assert_eq!(
        outcome.plans.len(),
        3,
        "{model}: expected the paper's three plans"
    );
    for plan in &outcome.plans {
        // Non-empty averaged curves on the common cost grid.
        assert!(
            !plan.averaged.costs.is_empty(),
            "{model}/{}: averaged curve is empty",
            plan.plan.label()
        );
        assert_eq!(plan.averaged.costs.len(), plan.averaged.mean_rmse.len());
        assert!(
            plan.averaged.mean_rmse.iter().all(|r| r.is_finite()),
            "{model}/{}: non-finite averaged RMSE",
            plan.plan.label()
        );
        // Monotone cost ledgers: profiling cost only ever accumulates.
        for run in &plan.runs {
            let costs: Vec<f64> = run.curve.points().iter().map(|p| p.cost_seconds).collect();
            assert!(
                costs.windows(2).all(|w| w[1] >= w[0]),
                "{model}/{}: cost curve decreased",
                plan.plan.label()
            );
            assert!(run.ledger.total_seconds() > 0.0);
        }
    }
}

#[test]
fn quick_scale_comparison_works_with_dynatree() {
    let model = SurrogateSpec::from_name("dynatree").unwrap();
    let outcome = quick_outcome(model);
    assert_protocol_invariants(model, &outcome);
}

#[test]
fn quick_scale_comparison_works_with_cart() {
    let model = SurrogateSpec::from_name("cart").unwrap();
    let outcome = quick_outcome(model);
    assert_protocol_invariants(model, &outcome);
}

#[test]
fn dynatree_and_cart_explore_the_space_differently() {
    // The two tree families share the protocol but not the model: their
    // selected examples (and therefore their cost ledgers) must not be
    // byte-identical copies of each other.
    let dynatree = quick_outcome(SurrogateSpec::from_name("dynatree").unwrap());
    let cart = quick_outcome(SurrogateSpec::from_name("cart").unwrap());
    let sequential_costs = |outcome: &ComparisonOutcome| -> Vec<f64> {
        outcome
            .plans
            .iter()
            .find(|p| p.plan.allows_revisits())
            .expect("sequential plan present")
            .runs
            .iter()
            .map(|r| r.ledger.total_seconds())
            .collect()
    };
    assert_ne!(sequential_costs(&dynatree), sequential_costs(&cart));
}

#[test]
fn spec_driven_learner_matches_concrete_model_runs() {
    // Building through the spec layer must not change learner behaviour:
    // a boxed dyn model from the spec and the concrete model with the same
    // configuration and seeds produce identical runs.
    use alic::data::dataset::{Dataset, DatasetConfig};
    use alic::model::dynatree::{DynaTree, DynaTreeConfig};
    use alic::sim::profiler::SimulatedProfiler;

    let spec_kernel = spapt_kernel(SpaptKernel::Mvt);
    let mut dataset_profiler = SimulatedProfiler::new(spec_kernel.clone(), 1);
    let dataset = Dataset::generate(
        &mut dataset_profiler,
        &DatasetConfig {
            configurations: 150,
            observations: 5,
            seed: 2,
        },
    );
    let split = dataset.split(110, 3);
    let learner_config = LearnerConfig {
        initial_examples: 4,
        initial_observations: 5,
        candidates_per_iteration: 20,
        max_iterations: 25,
        evaluate_every: 5,
        plan: SamplingPlan::sequential(5),
        ..Default::default()
    };
    let tree_config = DynaTreeConfig {
        particles: 30,
        seed: 9,
        ..Default::default()
    };

    let mut profiler = SimulatedProfiler::new(spec_kernel.clone(), 17);
    let mut concrete = DynaTree::new(tree_config);
    let concrete_run = ActiveLearner::new(learner_config, &mut profiler)
        .run(&mut concrete, &dataset, &split)
        .unwrap();

    let mut profiler = SimulatedProfiler::new(spec_kernel, 17);
    let mut boxed = SurrogateSpec::DynaTree(tree_config).build(9);
    let boxed_run = ActiveLearner::new(learner_config, &mut profiler)
        .run(boxed.as_mut(), &dataset, &split)
        .unwrap();

    assert_eq!(concrete_run, boxed_run);
}
