//! Warm-store contracts that hold the whole stack together:
//!
//! * the Zobrist fingerprint is a pure function of the key — stable across
//!   rebuilds and process restarts (pinned by a golden constant and by the
//!   persisted store's bucket-placement validation);
//! * distinct parameter spaces can *never* alias a cached surrogate: the
//!   structured (non-hashed) discriminant is injective, even for
//!   adversarial parameter names containing the signature's own
//!   punctuation;
//! * a torn warm-store write is quarantined and the daemon falls back to a
//!   cold start whose replies are **byte-identical** to running with no
//!   store at all.
//!
//! These tests never install the fault plane and are safe to run
//! concurrently with each other.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use alic::core::warmstore::{space_signature, WarmKey, WarmStore};
use alic::model::SurrogateSpec;
use alic::serve::{ConnState, Engine, ServeConfig};
use alic::sim::space::{ParamKind, ParamSpec, ParameterSpace};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "alic-warmstore-it-{label}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A parameter as its raw generator parts: (name, kind index, min, max).
type Part = (String, u8, u32, u32);

fn build_space(parts: &[Part]) -> ParameterSpace {
    ParameterSpace::new(
        parts
            .iter()
            .map(|(name, kind, min, max)| {
                let kind = match kind % 3 {
                    0 => ParamKind::Unroll,
                    1 => ParamKind::CacheTile,
                    _ => ParamKind::RegisterTile,
                };
                ParamSpec::new(name.clone(), kind, *min, *max)
            })
            .collect(),
    )
    .unwrap()
}

/// Name alphabet deliberately includes the signature's own punctuation
/// (`:`, `,`) plus quotes and backslashes, so discriminant injectivity
/// cannot lean on "nice" parameter names.
const NAME_CHARS: &[char] = &['a', 'b', 'z', ':', ',', '"', '\\', '_'];

/// Decodes one generator word into a parameter part: kind, bounds, and a
/// 1–6 character name drawn from the adversarial alphabet.
fn decode_part(code: u64) -> Part {
    let kind = (code % 3) as u8;
    let min = ((code >> 2) % 40) as u32;
    let span = ((code >> 8) % 8) as u32;
    let name_len = 1 + (code >> 16) % 6;
    let mut name = String::new();
    let mut bits = code >> 24;
    for _ in 0..name_len {
        name.push(NAME_CHARS[(bits % 8) as usize]);
        bits /= 8;
    }
    (name, kind, min, min + span)
}

fn decode_parts(codes: &[u64]) -> Vec<Part> {
    codes.iter().map(|&c| decode_part(c)).collect()
}

proptest! {
    /// Fingerprint and discriminant are pure functions of the key parts:
    /// two keys built independently from the same parts agree exactly.
    #[test]
    fn fingerprint_is_a_pure_function_of_the_key(
        codes in proptest::collection::vec(0u64..u64::MAX, 1..5),
        kernel_tag in 0u64..1_000_000,
        noise_tag in 0usize..3,
    ) {
        let parts = decode_parts(&codes);
        let kernel = format!("k{kernel_tag}");
        let noise = ["default", "campaign", "lowsnr"][noise_tag];
        let a = WarmKey::new(&kernel, &build_space(&parts), "gp", noise);
        let b = WarmKey::new(&kernel, &build_space(&parts), "gp", noise);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.discriminant(), b.discriminant());
    }

    /// Distinct spaces never collide on the structured discriminant —
    /// the store's authoritative identity check — whatever the names.
    #[test]
    fn distinct_spaces_never_collide_on_the_discriminant(
        codes_a in proptest::collection::vec(0u64..u64::MAX, 1..5),
        codes_b in proptest::collection::vec(0u64..u64::MAX, 1..5),
    ) {
        let parts_a = decode_parts(&codes_a);
        let parts_b = decode_parts(&codes_b);
        if parts_a == parts_b {
            continue;
        }
        let a = WarmKey::new("gemm", &build_space(&parts_a), "gp", "default");
        let b = WarmKey::new("gemm", &build_space(&parts_b), "gp", "default");
        prop_assert_ne!(a.discriminant(), b.discriminant());
        prop_assert_ne!(space_signature(&build_space(&parts_a)),
                        space_signature(&build_space(&parts_b)));
    }

    /// A saved store probed after reload hits exactly the keys it stored —
    /// fingerprints recomputed in a fresh process keep resolving to the
    /// persisted entries (the reload path re-derives bucket placement from
    /// the persisted fingerprint and rejects mismatches as corruption).
    #[test]
    fn persisted_fingerprints_survive_reload(
        codes in proptest::collection::vec(0u64..u64::MAX, 1..5),
        kernel_tag in 0u64..1_000_000,
    ) {
        let dir = temp_dir("reload");
        let path = dir.join("warm.json");
        let parts = decode_parts(&codes);
        let kernel = format!("k{kernel_tag}");
        let key = WarmKey::new(&kernel, &build_space(&parts), "dynatree", "default");
        let mut store = WarmStore::open(&path);
        store.insert(&key, 9, alic::data::io::JsonValue::Null);
        store.save().unwrap();
        let mut reloaded = WarmStore::open(&path);
        prop_assert_eq!(reloaded.len(), 1);
        prop_assert!(reloaded.probe(&key).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Golden fingerprint: the hash chain (SplitMix64 over salted 8-byte words)
/// is part of the on-disk contract — old stores must keep probing correctly
/// in new builds. If this constant moves, bump `WARMSTORE_SCHEMA` instead
/// of silently invalidating persisted stores.
#[test]
fn fingerprint_golden_value_is_stable_across_builds() {
    let space = ParameterSpace::new(vec![
        ParamSpec::new("u1", ParamKind::Unroll, 1, 12),
        ParamSpec::new("t1", ParamKind::CacheTile, 0, 6),
    ])
    .unwrap();
    let key = WarmKey::new("mvt", &space, "gp", "default");
    assert_eq!(format!("{:016x}", key.fingerprint()), GOLDEN_FINGERPRINT);
}

const GOLDEN_FINGERPRINT: &str = "8e4ded26694d10ed";

fn drive(engine: &mut Engine, conn: &mut ConnState, lines: &[&str]) -> Vec<String> {
    lines
        .iter()
        .map(|line| engine.handle_line(conn, line).reply.expect("reply"))
        .collect()
}

const WORKLOAD: &[&str] = &[
    "newsession mvt u:unroll:1:20,t:cache-tile:0:6 gp",
    "observe 3,2 4.0",
    "observe 9,1 3.1",
    "observe 14,5 2.8",
    "observe 6,3 3.4",
    "suggest 3",
    "best",
];

/// A torn (half-written) warm store must quarantine on open and leave the
/// daemon's behavior byte-identical to never having had a store.
#[test]
fn torn_warm_store_quarantines_and_cold_start_is_byte_identical() {
    // Reference: a store-less daemon in its own directory.
    let cold_dir = temp_dir("cold");
    let mut config = ServeConfig::new(&cold_dir);
    config.default_model = SurrogateSpec::from_name("gp").unwrap();
    let mut engine = Engine::open(config).unwrap();
    let mut conn = ConnState::new();
    let reference = drive(&mut engine, &mut conn, WORKLOAD);
    drop(engine);

    // Populate a warm store from a donor daemon, then tear its file.
    let donor_dir = temp_dir("donor");
    let store_path = donor_dir.join("warm.json");
    let mut config = ServeConfig::new(&donor_dir);
    config.default_model = SurrogateSpec::from_name("gp").unwrap();
    config.warm_store = Some(store_path.clone());
    let mut engine = Engine::open(config).unwrap();
    let mut conn = ConnState::new();
    drive(&mut engine, &mut conn, WORKLOAD);
    assert_eq!(
        engine.handle_line(&mut conn, "quit").reply.unwrap(),
        "ok bye"
    );
    drop(engine);
    let full = std::fs::read_to_string(&store_path).unwrap();
    assert!(full.len() > 2, "donor should have persisted a store");
    std::fs::write(&store_path, &full[..full.len() / 2]).unwrap();

    // A fresh daemon (fresh session directory, same torn store) degrades
    // to cold: byte-identical replies, evidence preserved.
    let subject_dir = temp_dir("subject");
    let mut config = ServeConfig::new(&subject_dir);
    config.default_model = SurrogateSpec::from_name("gp").unwrap();
    config.warm_store = Some(store_path.clone());
    let mut engine = Engine::open(config).unwrap();
    let mut conn = ConnState::new();
    let replies = drive(&mut engine, &mut conn, WORKLOAD);
    assert_eq!(replies, reference);
    assert!(!store_path.exists());
    assert!(donor_dir.join("warm.json.corrupt").exists());
    // The degraded store is fully functional again: this run's surrogate
    // is harvested into a fresh file on quit.
    assert_eq!(
        engine.handle_line(&mut conn, "quit").reply.unwrap(),
        "ok bye"
    );
    assert!(store_path.exists());

    for dir in [cold_dir, donor_dir, subject_dir] {
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
