//! Consistency guarantees of the batched scoring pipeline.
//!
//! Two properties guard the zero-copy batch APIs introduced with the
//! flat-feature pipeline:
//!
//! 1. For **every** surrogate family, `predict_batch` / `alm_scores` /
//!    `alc_scores` must agree with their single-point counterparts to
//!    1e-12 — batching is an implementation detail, never a semantic change.
//! 2. Learner runs must be bit-identical across worker-thread counts: the
//!    parallel scoring paths write back by index and accumulate in a fixed
//!    order, so 1 thread and 4 threads must produce the same run.

use alic::core::prelude::*;
use alic::data::dataset::{Dataset, DatasetConfig};
use alic::model::SurrogateSpec;
use alic::sim::noise::NoiseProfile;
use alic::sim::profiler::SimulatedProfiler;
use alic::sim::space::ParamSpec;
use alic::sim::KernelSpec;
use proptest::prelude::*;

/// Deterministic, well-spread 2-D training data (no degenerate kernel
/// matrices, so the Gaussian process always fits).
fn training_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let a = (i as f64 + (seed % 7) as f64 * 0.09) / n as f64;
        let b = ((i * 13 + seed as usize) % n) as f64 / n as f64;
        xs.push(vec![a, b]);
        ys.push((5.0 * a).sin() + 0.7 * b + 0.01 * ((seed % 11) as f64));
    }
    (xs, ys)
}

/// Every surrogate family, with ensemble sizes small enough for a property
/// test but covering each `SurrogateSpec` variant.
fn all_specs() -> Vec<SurrogateSpec> {
    SurrogateSpec::all()
        .into_iter()
        .map(|spec| match spec {
            SurrogateSpec::DynaTree(_) => SurrogateSpec::dynatree(30),
            other => other,
        })
        .collect()
}

proptest! {
    #[test]
    fn batch_apis_agree_with_single_point(n in 12usize..30, seed in 0u64..200, shift in 0.0f64..0.5) {
        let (xs, ys) = training_data(n, seed);
        let queries: Vec<Vec<f64>> = (0..17)
            .map(|i| vec![shift + i as f64 / 17.0, 1.0 - i as f64 / 17.0])
            .collect();
        let query_views: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
        let reference_views: Vec<&[f64]> = query_views[..5].to_vec();
        for spec in all_specs() {
            let mut model = spec.build(seed);
            let views = alic::model::row_views(&xs);
            model.fit(&views, &ys).unwrap_or_else(|e| panic!("{spec}: fit failed: {e}"));

            let batch = model.predict_batch(&query_views).unwrap();
            let alm = model.alm_scores(&query_views).unwrap();
            let alc = model.alc_scores(&query_views, &reference_views).unwrap();
            prop_assert_eq!(batch.len(), queries.len());
            for (i, view) in query_views.iter().enumerate() {
                let single = model.predict(view).unwrap();
                prop_assert!(
                    (batch[i].mean - single.mean).abs() <= 1e-12,
                    "{} mean: batch {} vs single {}", spec, batch[i].mean, single.mean
                );
                prop_assert!(
                    (batch[i].variance - single.variance).abs() <= 1e-12,
                    "{} variance: batch {} vs single {}", spec, batch[i].variance, single.variance
                );
                let alm_single = model.alm_score(view).unwrap();
                prop_assert!(
                    (alm[i] - alm_single).abs() <= 1e-12,
                    "{} alm: batch {} vs single {}", spec, alm[i], alm_single
                );
                let alc_single = model.alc_score(view, &reference_views).unwrap();
                prop_assert!(
                    (alc[i] - alc_single).abs() <= 1e-12,
                    "{} alc: batch {} vs single {}", spec, alc[i], alc_single
                );
            }
        }
    }
}

fn toy_profiler(seed: u64) -> SimulatedProfiler {
    let spec = KernelSpec::new(
        "toy",
        vec![ParamSpec::unroll("u1"), ParamSpec::unroll("u2")],
        1.0,
        0.5,
        NoiseProfile::moderate(),
    )
    .unwrap()
    .with_surface_seed(7);
    SimulatedProfiler::new(spec, seed)
}

fn run_learner(spec: SurrogateSpec) -> LearnerRun {
    let dataset = {
        let mut gen_profiler = toy_profiler(1);
        Dataset::generate(
            &mut gen_profiler,
            &DatasetConfig {
                configurations: 180,
                observations: 4,
                seed: 2,
            },
        )
    };
    let split = dataset.split(130, 3);
    let config = LearnerConfig {
        initial_examples: 5,
        initial_observations: 4,
        candidates_per_iteration: 40,
        max_iterations: 50,
        evaluate_every: 10,
        acquisition: Acquisition::Alc { reference_size: 25 },
        plan: SamplingPlan::sequential(4),
        criteria: CompletionCriteria::none(),
        seed: 9,
    };
    let mut profiler = toy_profiler(21);
    let mut learner = ActiveLearner::new(config, &mut profiler);
    let mut model = spec.build(13);
    learner.run(model.as_mut(), &dataset, &split).unwrap()
}

/// The `RAYON_NUM_THREADS=1` vs `4` determinism guarantee, for the dynamic
/// tree (parallel tree traversals), the Gaussian process (parallel blocked
/// triangular solves), and the sparse GP (parallel fit-block sweep with the
/// serial in-order reduce). The shim's programmatic override stands in
/// for the environment variable because `setenv` concurrent with
/// worker-thread `getenv` is undefined behavior on glibc;
/// `current_num_threads` reads the override exactly where it would read
/// `RAYON_NUM_THREADS`.
#[test]
fn learner_runs_are_identical_across_thread_counts() {
    for spec in [
        SurrogateSpec::dynatree(50),
        SurrogateSpec::from_name("gp").unwrap(),
        SurrogateSpec::from_name("sgp").unwrap(),
    ] {
        rayon::set_num_threads(1);
        let serial = run_learner(spec);
        rayon::set_num_threads(4);
        let parallel = run_learner(spec);
        rayon::set_num_threads(0);
        assert_eq!(serial.curve, parallel.curve, "{spec}: curve diverged");
        assert_eq!(serial.ledger, parallel.ledger, "{spec}: ledger diverged");
        assert_eq!(serial.visited, parallel.visited, "{spec}: visits diverged");
        assert_eq!(serial.iterations, parallel.iterations);
    }
}
