//! The incremental Gaussian process must be indistinguishable from a cold
//! refit.
//!
//! `GaussianProcess::update` extends the live Cholesky factor with a rank-1
//! row append instead of rebuilding and refactorizing the kernel matrix.
//! The contract: a model grown by `fit(k)` + `m × update` predicts exactly
//! like a model cold-fitted on all `k + m` points with the same (fit-time
//! frozen) hyper-parameters — across dimensions, kernel scales, noise
//! levels and the jitter paths that near-duplicate inputs exercise. The
//! properties below check mean and variance to 1e-8 (the implementation is
//! designed to be bit-identical; the tolerance guards the contract, not the
//! implementation detail).

use alic::model::gp::{GaussianProcess, GpConfig};
use alic::model::{row_views, SurrogateModel};
use proptest::prelude::*;

/// Deterministic pseudo-random training data: `n` points in `dim`
/// dimensions with targets from a smooth-plus-wiggle response.
fn training_data(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..n {
        let x: Vec<f64> = (0..dim).map(|_| next() * 4.0 - 2.0).collect();
        let y = x
            .iter()
            .enumerate()
            .map(|(d, v)| (v * (d + 1) as f64).sin())
            .sum::<f64>()
            + 0.1 * next();
        xs.push(x);
        ys.push(y);
    }
    (xs, ys)
}

/// Cold comparison model: fitted on everything at once with the incremental
/// model's frozen hyper-parameters (they are fit-time data-scale heuristics,
/// so the cold model must be pinned to the same values to compare the
/// *factorization* paths rather than the heuristics).
fn cold_counterpart(incremental: &GaussianProcess, noise: f64) -> GaussianProcess {
    GaussianProcess::new(GpConfig {
        lengthscale: Some(incremental.lengthscale()),
        signal_variance: Some(incremental.signal_variance()),
        noise_variance: noise,
    })
}

fn assert_matches_cold(
    incremental: &GaussianProcess,
    cold: &GaussianProcess,
    queries: &[Vec<f64>],
) {
    for q in queries {
        let a = incremental.predict(q).unwrap();
        let b = cold.predict(q).unwrap();
        assert!(
            (a.mean - b.mean).abs() <= 1e-8,
            "mean diverged at {q:?}: incremental {} vs cold {}",
            a.mean,
            b.mean
        );
        assert!(
            (a.variance - b.variance).abs() <= 1e-8,
            "variance diverged at {q:?}: incremental {} vs cold {}",
            a.variance,
            b.variance
        );
    }
}

proptest! {
    /// fit(k) + m×update == cold fit(k+m), across random data shapes,
    /// dimensions and noise levels.
    #[test]
    fn incremental_gp_matches_cold_refit(
        k in 5usize..30,
        m in 1usize..25,
        dim in 1usize..4,
        seed in 0u64..500,
        noise_exp in 2u32..9,
    ) {
        let noise = 10f64.powi(-(noise_exp as i32));
        let (xs, ys) = training_data(k + m, dim, seed);
        let views = row_views(&xs);

        let mut incremental = GaussianProcess::new(GpConfig {
            noise_variance: noise,
            ..Default::default()
        });
        incremental.fit(&views[..k], &ys[..k]).unwrap();
        for (x, &y) in views[k..].iter().zip(&ys[k..]) {
            incremental.update(x, y).unwrap();
        }

        let mut cold = cold_counterpart(&incremental, noise);
        cold.fit(&views, &ys).unwrap();

        let (queries, _) = training_data(10, dim, seed ^ 0xABCD);
        assert_matches_cold(&incremental, &cold, &queries);
        prop_assert_eq!(incremental.observation_count(), k + m);
    }

    /// The jitter path: exact duplicates injected into both the initial fit
    /// and the update stream stress the Schur complement and (when the
    /// escalation ladder fires) the full-refactorization fallback, which
    /// must land on exactly the factorization a cold fit produces.
    #[test]
    fn incremental_gp_matches_cold_refit_with_duplicates(
        k in 6usize..20,
        m in 2usize..15,
        seed in 0u64..300,
        dup_fit in 0usize..4,
        dup_update in 0usize..4,
    ) {
        let noise = 1e-8; // tiny nugget: duplicates dominate the conditioning
        let (mut xs, mut ys) = training_data(k + m, 2, seed);
        // Duplicate some fit-set rows inside the fit set...
        for d in 0..dup_fit.min(k / 2) {
            xs[k - 1 - d] = xs[d].clone();
            ys[k - 1 - d] = ys[d];
        }
        // ...and make some updates exact duplicates of earlier points.
        for d in 0..dup_update.min(m) {
            xs[k + d] = xs[d % k].clone();
        }
        let views = row_views(&xs);

        let mut incremental = GaussianProcess::new(GpConfig {
            noise_variance: noise,
            ..Default::default()
        });
        incremental.fit(&views[..k], &ys[..k]).unwrap();
        for (x, &y) in views[k..].iter().zip(&ys[k..]) {
            incremental.update(x, y).unwrap();
        }

        let mut cold = cold_counterpart(&incremental, noise);
        cold.fit(&views, &ys).unwrap();

        let (queries, _) = training_data(10, 2, seed ^ 0x5EED);
        assert_matches_cold(&incremental, &cold, &queries);
        // Both models must have landed on the same jitter level, whether or
        // not the ladder escalated.
        prop_assert_eq!(incremental.jitter(), cold.jitter());
    }
}

/// The common path is genuinely incremental: a long run of well-spread
/// updates performs no full refactorization beyond the initial fit.
#[test]
fn update_never_refactorizes_on_well_conditioned_data() {
    let (xs, ys) = training_data(120, 3, 42);
    let views = row_views(&xs);
    let mut gp = GaussianProcess::with_defaults();
    gp.fit(&views[..20], &ys[..20]).unwrap();
    for (x, &y) in views[20..].iter().zip(&ys[20..]) {
        gp.update(x, y).unwrap();
    }
    assert_eq!(gp.observation_count(), 120);
    assert_eq!(
        gp.refactorizations(),
        1,
        "100 updates must all take the O(n²) rank-1 path"
    );
}
