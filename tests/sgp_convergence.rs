//! Sparse-GP → dense-GP convergence as the inducing set grows.
//!
//! The DTC approximation is exact at `m = n`: with the inducing set equal to
//! the training inputs, the push-through identity collapses its predictive
//! mean *and* variance onto the dense GP posterior. The only remaining
//! differences are the two models' independent diagonal jitters (≈`1e-8`
//! relative), so the `m = n` comparison uses a tolerance of `1e-3` — far
//! above the jitter, far below any real approximation error. Smaller
//! inducing sets must degrade gracefully toward that limit.

use alic::model::gp::{GaussianProcess, GpConfig};
use alic::model::row_views;
use alic::model::sgp::{SparseGaussianProcess, SparseGpConfig};
use alic::model::SurrogateModel;

/// A wiggly 1-D target: hard enough that a 10-point inducing basis visibly
/// underfits, so the convergence trend is meaningful.
fn training_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (9.0 * x[0]).sin() + 0.4 * (23.0 * x[0]).cos())
        .collect();
    (xs, ys)
}

/// Shared, fixed hyper-parameters, so the comparison isolates the low-rank
/// approximation instead of mixing in heuristic differences.
const LENGTHSCALE: f64 = 0.08;
const SIGNAL_VARIANCE: f64 = 1.2;
const NOISE_VARIANCE: f64 = 1e-4;

fn dense(xs: &[&[f64]], ys: &[f64]) -> GaussianProcess {
    let mut gp = GaussianProcess::new(GpConfig {
        lengthscale: Some(LENGTHSCALE),
        signal_variance: Some(SIGNAL_VARIANCE),
        noise_variance: NOISE_VARIANCE,
    });
    gp.fit(xs, ys).unwrap();
    gp
}

fn sparse(xs: &[&[f64]], ys: &[f64], inducing: usize) -> SparseGaussianProcess {
    let mut sgp = SparseGaussianProcess::new(SparseGpConfig {
        inducing,
        lengthscale: Some(LENGTHSCALE),
        signal_variance: Some(SIGNAL_VARIANCE),
        noise_variance: NOISE_VARIANCE,
    });
    sgp.fit(xs, ys).unwrap();
    sgp
}

/// Worst-case predictive (mean, variance) disagreement over a dense grid.
fn max_divergence(gp: &GaussianProcess, sgp: &SparseGaussianProcess) -> (f64, f64) {
    let mut worst_mean = 0.0f64;
    let mut worst_var = 0.0f64;
    for i in 0..200 {
        let q = [i as f64 / 199.0];
        let d = gp.predict(&q).unwrap();
        let s = sgp.predict(&q).unwrap();
        worst_mean = worst_mean.max((d.mean - s.mean).abs());
        worst_var = worst_var.max((d.variance - s.variance).abs());
    }
    (worst_mean, worst_var)
}

#[test]
fn full_inducing_set_reproduces_the_dense_posterior() {
    let (xs, ys) = training_data(50);
    let views = row_views(&xs);
    let gp = dense(&views, &ys);
    let sgp = sparse(&views, &ys, 50);
    assert_eq!(sgp.inducing_count(), 50);
    let (mean_err, var_err) = max_divergence(&gp, &sgp);
    assert!(mean_err < 1e-3, "m = n mean divergence {mean_err}");
    assert!(var_err < 1e-3, "m = n variance divergence {var_err}");
}

#[test]
fn divergence_shrinks_as_the_inducing_set_grows() {
    let (xs, ys) = training_data(50);
    let views = row_views(&xs);
    let gp = dense(&views, &ys);
    let coarse = max_divergence(&gp, &sparse(&views, &ys, 10)).0;
    let fine = max_divergence(&gp, &sparse(&views, &ys, 50)).0;
    // The coarse basis must visibly underfit this target (otherwise the
    // comparison proves nothing), and the full basis must beat it by orders
    // of magnitude.
    assert!(coarse > 1e-2, "10 inducing points underfit: {coarse}");
    assert!(fine < coarse / 10.0, "coarse {coarse} vs fine {fine}");
}

#[test]
fn updates_preserve_the_m_equals_n_correspondence_approximately() {
    // After a fit at m = n, incremental updates keep the inducing basis
    // frozen while the dense GP effectively grows its basis — the models
    // stay close (the new points lie inside the basis's span) but not
    // identical. This pins the update path against gross drift.
    let (xs, ys) = training_data(50);
    let views = row_views(&xs);
    let mut gp = dense(&views[..40], &ys[..40]);
    let mut sgp = sparse(&views[..40], &ys[..40], 40);
    for (x, &y) in xs[40..].iter().zip(&ys[40..]) {
        gp.update(x, y).unwrap();
        sgp.update(x, y).unwrap();
    }
    let (mean_err, _) = max_divergence(&gp, &sgp);
    assert!(mean_err < 0.1, "post-update mean divergence {mean_err}");
}
