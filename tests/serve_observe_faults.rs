//! Fault-plane regression for the observe path's failure handling.
//!
//! When the surrogate rejects an observation *and* the rollback checkpoint
//! cannot be written, the in-memory log is the only copy that still honors
//! every `ok observed` already sent. The engine must keep that entry
//! resident and dirty; an earlier version dropped it, so the next `attach`
//! replayed a stale checkpoint — losing acknowledged observations at
//! cadence > 1 (and resurrecting the rejected one at cadence 1).
//!
//! Every test here manipulates the process-global fault plane, so this
//! binary holds the exclusive chaos lock for the whole test and must not
//! share a binary with unguarded tests.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use alic::model::SurrogateSpec;
use alic::serve::{ConnState, Engine, ServeConfig};
use alic::stats::fault::{self, FaultPlan, FaultSite};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "alic-observe-faults-{label}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const NEWSESSION: &str = "newsession mvt u:unroll:1:20,t:cache-tile:0:6 gp";

#[test]
fn failed_observe_with_failed_rollback_checkpoint_keeps_memory_authoritative() {
    // Hold the exclusive chaos lock with the plane off; faults are armed
    // mid-test for exactly one request.
    let _guard = fault::exclusive_clean();
    let dir = temp_dir("rollback");

    let mut config = ServeConfig::new(&dir);
    config.default_model = SurrogateSpec::from_name("gp").unwrap();
    config.checkpoint_every = 10; // no cadence checkpoint inside this test
    let mut engine = Engine::open(config).unwrap();
    let mut conn = ConnState::new();
    let reply = engine.handle_line(&mut conn, NEWSESSION).reply.unwrap();
    assert_eq!(reply, "ok session s000000 dim 2");

    for line in ["observe 3,2 4.0", "observe 9,1 3.1", "observe 14,5 2.8"] {
        let reply = engine.handle_line(&mut conn, line).reply.unwrap();
        assert!(reply.starts_with("ok observed"), "{reply}");
    }

    // The fourth observation reaches FIT_MIN, so it triggers the first
    // real fit — which jitter exhaustion fails — and the rollback
    // checkpoint, which write faults fail (write_verified retries are
    // covered by the generous budget).
    fault::install(
        FaultPlan::new(11)
            .with_site(FaultSite::JitterExhaustion, 1.0, Some(1))
            .with_site(FaultSite::WriteIo, 1.0, Some(50)),
    );
    let reply = engine
        .handle_line(&mut conn, "observe 6,3 3.4")
        .reply
        .unwrap();
    assert!(reply.starts_with("err model"), "{reply}");
    fault::deactivate();

    // Regression: the three acknowledged observations must survive in
    // memory even though the rollback checkpoint failed. The old code
    // dropped the live entry here, so attach replayed the 0-observation
    // checkpoint written at newsession time.
    let reply = engine
        .handle_line(&mut conn, "attach s000000")
        .reply
        .unwrap();
    assert_eq!(reply, "ok attached s000000 obs 3");

    // With the plane clean, the same observation is accepted on retry...
    let reply = engine
        .handle_line(&mut conn, "observe 6,3 3.4")
        .reply
        .unwrap();
    assert_eq!(reply, "ok observed 4");

    // ...and the still-dirty entry flushes, making all four durable.
    let reply = engine.handle_line(&mut conn, "checkpoint").reply.unwrap();
    assert!(reply.starts_with("ok checkpoint"), "{reply}");
    drop(engine);

    let mut config = ServeConfig::new(&dir);
    config.default_model = SurrogateSpec::from_name("gp").unwrap();
    let mut engine = Engine::open(config).unwrap();
    let mut conn = ConnState::new();
    let reply = engine
        .handle_line(&mut conn, "attach s000000")
        .reply
        .unwrap();
    assert_eq!(reply, "ok attached s000000 obs 4");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn failed_observe_with_successful_rollback_checkpoint_stays_consistent() {
    // Companion case: the rollback checkpoint succeeds, so disk and memory
    // agree on the rolled-back log and the session keeps serving.
    let _guard = fault::exclusive_clean();
    let dir = temp_dir("repair");

    let mut config = ServeConfig::new(&dir);
    config.default_model = SurrogateSpec::from_name("gp").unwrap();
    config.checkpoint_every = 10;
    let mut engine = Engine::open(config).unwrap();
    let mut conn = ConnState::new();
    engine.handle_line(&mut conn, NEWSESSION).reply.unwrap();
    for line in ["observe 3,2 4.0", "observe 9,1 3.1", "observe 14,5 2.8"] {
        engine.handle_line(&mut conn, line).reply.unwrap();
    }

    // Only the fit fails; the rollback checkpoint goes through.
    fault::install(FaultPlan::new(23).with_site(FaultSite::JitterExhaustion, 1.0, Some(1)));
    let reply = engine
        .handle_line(&mut conn, "observe 6,3 3.4")
        .reply
        .unwrap();
    assert!(reply.starts_with("err model"), "{reply}");
    fault::deactivate();

    // Memory and the (repaired) checkpoint both hold three observations:
    // a restarted daemon sees exactly what the live one reports.
    let reply = engine
        .handle_line(&mut conn, "attach s000000")
        .reply
        .unwrap();
    assert_eq!(reply, "ok attached s000000 obs 3");
    drop(engine);

    let mut config = ServeConfig::new(&dir);
    config.default_model = SurrogateSpec::from_name("gp").unwrap();
    let mut engine = Engine::open(config).unwrap();
    let mut conn = ConnState::new();
    let reply = engine
        .handle_line(&mut conn, "attach s000000")
        .reply
        .unwrap();
    assert_eq!(reply, "ok attached s000000 obs 3");

    std::fs::remove_dir_all(&dir).unwrap();
}
