//! Integration smoke tests of the experiment harness: every table/figure
//! module must run end to end at quick scale and produce sane artefacts.

use alic::experiments::{ablation, fig1, fig2, fig5, fig6, table1, table2, Scale};
use alic::sim::spapt::SpaptKernel;

#[test]
fn figure1_study_runs_and_saves_samples() {
    let result = fig1::run_with(5, 10, fig1::MAE_THRESHOLD_SECONDS, 3);
    assert_eq!(result.points.len(), 25);
    assert!(result.optimal_plan_runs <= result.fixed_plan_runs);
    assert!(result.optimal_fraction() > 0.0);
}

#[test]
fn figure2_sweep_matches_the_papers_shape() {
    let result = fig2::run(7);
    assert_eq!(result.points.len(), 30);
    assert!(result.high_level() > result.plateau_level());
}

#[test]
fn table1_and_fig5_quick_scale() {
    let kernels = [SpaptKernel::Lu, SpaptKernel::Mvt];
    let (table, outcomes) = table1::run_for_kernels(&kernels, Scale::Quick);
    assert_eq!(table.rows.len(), 2);
    assert_eq!(outcomes.len(), 2);
    for row in &table.rows {
        assert!(row.lowest_common_rmse.is_finite());
        assert!(row.lowest_common_rmse > 0.0);
    }
    let fig = fig5::Fig5Result::from_table1(&table);
    // Bars only exist for kernels with a finite speed-up, plus the geo-mean.
    assert!(fig.bars.len() <= 3);
    if !fig.bars.is_empty() {
        assert!(!fig.ascii_chart().is_empty());
    }
}

#[test]
fn fig6_quick_scale_produces_aligned_series() {
    let (_, outcomes) = table1::run_for_kernels(&[SpaptKernel::Hessian], Scale::Quick);
    let fig = fig6::curves_from_outcomes(&outcomes);
    assert_eq!(fig.kernels.len(), 1);
    for series in &fig.kernels[0].series {
        assert_eq!(series.costs.len(), series.rmse.len());
    }
}

#[test]
fn table2_quick_scale_rows_are_ordered() {
    let row = table2::run_kernel(SpaptKernel::Bicgkernel, 30, 10, 5);
    assert!(row.variance.min <= row.variance.max);
    assert!(row.ci_ratio_full.mean <= row.ci_ratio_5.mean * 10.0);
}

#[test]
fn acquisition_ablation_quick_scale() {
    let rows = ablation::acquisition_ablation(SpaptKernel::Lu, Scale::Quick);
    assert_eq!(rows.len(), 3);
    assert!(rows.iter().all(|r| r.mean_cost > 0.0));
}
