//! Golden-snapshot regression suite for the experiment pipeline.
//!
//! For two kernels × all six [`SurrogateSpec`] families, a smoke-scale
//! `compare_plans` outcome is serialized to canonical JSON and diffed
//! against the snapshots committed under `tests/golden/`. Any behavioural
//! change anywhere in the stack — simulator, dataset generation, learner,
//! acquisition, surrogate models, curve averaging, campaign runner, codec —
//! shows up as a byte diff here.
//!
//! When a change is *intentional*, regenerate the snapshots with
//!
//! ```text
//! ALIC_UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```
//!
//! and commit the updated files (the failure message repeats this command).
//!
//! The snapshots double as cross-version fixtures for the campaign codec:
//! every committed file must parse back into an outcome that re-serializes
//! to identical bytes.

use std::fs;
use std::path::PathBuf;

use alic::core::experiment::{compare_plans, ComparisonConfig};
use alic::core::learner::LearnerConfig;
use alic::core::plan::SamplingPlan;
use alic::core::runner::codec;
use alic::data::dataset::DatasetConfig;
use alic::model::SurrogateSpec;
use alic::sim::spapt::{spapt_kernel, SpaptKernel};

const GOLDEN_KERNELS: [SpaptKernel; 2] = [SpaptKernel::Mvt, SpaptKernel::Gemver];

/// The six model families at smoke-friendly hyper-parameters (the dynamic
/// tree is shrunk so the whole suite stays fast in debug builds; the other
/// families are scale-independent defaults).
fn golden_models() -> [SurrogateSpec; 6] {
    let mut models = SurrogateSpec::all();
    models[0] = SurrogateSpec::dynatree(30);
    models
}

/// Smoke-scale comparison preserving the full experimental structure: the
/// paper's three plans, seeded repetitions, ALC acquisition.
fn golden_config(model: SurrogateSpec) -> ComparisonConfig {
    ComparisonConfig {
        learner: LearnerConfig {
            initial_examples: 4,
            initial_observations: 6,
            candidates_per_iteration: 18,
            max_iterations: 20,
            evaluate_every: 5,
            ..Default::default()
        },
        plans: vec![
            SamplingPlan::fixed(6),
            SamplingPlan::one_observation(),
            SamplingPlan::sequential(6),
        ],
        repetitions: 2,
        model,
        dataset: DatasetConfig {
            configurations: 200,
            observations: 6,
            seed: 0,
        },
        train_size: 150,
        grid_resolution: 32,
        seed: 11,
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn update_requested() -> bool {
    std::env::var_os("ALIC_UPDATE_GOLDEN").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Byte position and context of the first difference, for readable failures.
fn first_diff(expected: &str, actual: &str) -> String {
    let position = expected
        .bytes()
        .zip(actual.bytes())
        .position(|(e, a)| e != a)
        .unwrap_or_else(|| expected.len().min(actual.len()));
    let window = |s: &str| {
        let start = position.saturating_sub(60);
        let end = (position + 60).min(s.len());
        s.get(start..end)
            .unwrap_or("<non-utf8 boundary>")
            .to_string()
    };
    format!(
        "first difference at byte {position} (expected {} bytes, got {}):\n  expected ...{}...\n  actual   ...{}...",
        expected.len(),
        actual.len(),
        window(expected),
        window(actual)
    )
}

#[test]
fn golden_reports_match_for_every_model_family() {
    let dir = golden_dir();
    let update = update_requested();
    if update {
        fs::create_dir_all(&dir).unwrap();
    }
    let mut failures = Vec::new();

    for kernel in GOLDEN_KERNELS {
        for model in golden_models() {
            let label = format!("{}_{}", kernel.name(), model.name());
            let outcome = compare_plans(&spapt_kernel(kernel), &golden_config(model))
                .unwrap_or_else(|e| panic!("{label}: comparison failed: {e}"));
            let actual = codec::outcome_to_json_string(&outcome)
                .unwrap_or_else(|e| panic!("{label}: serialization failed: {e}"))
                + "\n";

            // The snapshot format must round-trip exactly, independent of
            // whether it matches the committed bytes.
            let reparsed = codec::outcome_from_json_str(actual.trim_end())
                .unwrap_or_else(|e| panic!("{label}: snapshot does not re-parse: {e}"));
            assert_eq!(reparsed, outcome, "{label}: codec round-trip drifted");

            let path = dir.join(format!("compare_plans_{label}.json"));
            if update {
                fs::write(&path, &actual).unwrap();
                eprintln!("updated {}", path.display());
                continue;
            }
            match fs::read_to_string(&path) {
                Ok(expected) if expected == actual => {}
                Ok(expected) => {
                    failures.push(format!("{label}: {}", first_diff(&expected, &actual)));
                }
                Err(e) => failures.push(format!(
                    "{label}: cannot read snapshot {}: {e}",
                    path.display()
                )),
            }
        }
    }

    assert!(
        failures.is_empty(),
        "{} golden snapshot(s) out of date:\n{}\n\n\
         If this change is intentional, regenerate the snapshots with:\n\n    \
         ALIC_UPDATE_GOLDEN=1 cargo test --test golden_reports\n\n\
         and commit the updated tests/golden/ files.",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn committed_snapshots_reparse_and_reserialize_identically() {
    // Guards the codec against format drift even when the pipeline output
    // changes: every committed snapshot must be a fixed point of
    // parse -> serialize.
    if update_requested() {
        // The sibling test is (re)writing the snapshots concurrently; check
        // the committed files on the next normal run instead.
        return;
    }
    let dir = golden_dir();
    let mut seen = 0;
    for entry in fs::read_dir(&dir).expect("tests/golden/ exists and is readable") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap();
        let outcome = codec::outcome_from_json_str(text.trim_end())
            .unwrap_or_else(|e| panic!("{}: does not parse: {e}", path.display()));
        let rewritten = codec::outcome_to_json_string(&outcome).unwrap() + "\n";
        assert_eq!(
            rewritten,
            text,
            "{}: not a serialization fixed point",
            path.display()
        );
        seen += 1;
    }
    assert_eq!(
        seen,
        GOLDEN_KERNELS.len() * golden_models().len(),
        "unexpected number of snapshots in tests/golden/"
    );
}
