//! Bit-identity property tests for the split-scan kernels.
//!
//! The dynamic tree's grow move ranks candidate splits by leaf marginal
//! likelihoods computed from `(count, Σy, Σy²)` triples, and the committed
//! goldens pin its output byte-for-byte — so every scan kernel
//! (`Scalar`, `Bitset`, `Simd`, the length-dispatching `Auto`, and the
//! no-copy direct stream) must produce **bit-identical** triples, not merely
//! close ones. These properties drive randomized leaf shapes through every
//! kernel and assert:
//!
//! 1. the `(n, Σy, Σy²)` triples agree to the bit across kernels, and
//! 2. therefore the grow move's likelihood scores and its selected split
//!    (argmax with first-wins tie-breaking, exactly like `propose_split`)
//!    agree to the bit as well — the property that keeps the committed
//!    dynatree goldens invariant under kernel selection.

use alic::model::dynatree::scan::{
    scan_left, scan_left_direct, LeafColumns, ScanKind, ATTEMPT_BATCH, BITSET_MIN_LEN,
};
use alic::model::leaf::{log_marginal_likelihood_of_sums, LeafPrior, LnGammaTable};
use proptest::prelude::*;

// The property runs leaves of 1..600 points, so both sides of the Auto
// dispatch (fused scalar below the cutover, SIMD bitset above) are exercised.
const _: () = assert!(
    BITSET_MIN_LEN < 600,
    "len range must reach the bitset regime"
);

/// Deterministic pseudo-random leaf data: `len` points of `dim` features in
/// `[0, 1)` plus targets in `[-2, 2)`. A seeded integer hash shrinks far
/// better than 600-element proptest vectors.
fn leaf_data(len: usize, dim: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let value = |tag: u64, i: usize, d: usize| {
        let mut h = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(tag)
            .wrapping_add((i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d))
            .wrapping_add((d as u64).wrapping_mul(0x27d4_eb2f_1656_67c5));
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % 10_000) as f64 / 10_000.0
    };
    let xs: Vec<Vec<f64>> = (0..len)
        .map(|i| (0..dim).map(|d| value(1, i, d)).collect())
        .collect();
    let ys: Vec<f64> = (0..len).map(|i| 4.0 * value(2, i, 0) - 2.0).collect();
    (xs, ys)
}

/// The grow move's score of one attempt: left-child likelihood from the
/// scanned triple plus right-child likelihood from `totals − left`, the
/// exact arithmetic `propose_split` performs on the kernel outputs.
#[allow(clippy::too_many_arguments)]
fn attempt_score(
    len: usize,
    total_sum: f64,
    total_sum_sq: f64,
    n_left: f64,
    sum_left: f64,
    sum_sq_left: f64,
    prior: &LeafPrior,
    table: &LnGammaTable,
) -> f64 {
    let left =
        log_marginal_likelihood_of_sums(n_left as usize, sum_left, sum_sq_left, prior, table);
    let right = log_marginal_likelihood_of_sums(
        len - n_left as usize,
        total_sum - sum_left,
        total_sum_sq - sum_sq_left,
        prior,
        table,
    );
    left + right
}

proptest! {
    #[test]
    fn all_kernels_scan_bit_identically_and_pick_the_same_split(
        len in 1usize..600,
        dim in 1usize..4,
        live in 1usize..=ATTEMPT_BATCH,
        seed in 0u64..1_000_000,
    ) {
        let (xs, ys) = leaf_data(len, dim, seed);
        let mut columns = LeafColumns::default();
        columns.fill(
            dim,
            len,
            xs.iter().map(Vec::as_slice).zip(ys.iter().copied()),
        );

        // Attempt thresholds drawn from the data itself, so left sets range
        // from empty to full — including the exact-equality boundary.
        let mut dims = [0usize; ATTEMPT_BATCH];
        let mut thresholds = [0.0f64; ATTEMPT_BATCH];
        for k in 0..live {
            dims[k] = (seed as usize / 3 + k) % dim;
            thresholds[k] = xs[(seed as usize + k * 17) % len][dims[k]];
        }

        let reference = scan_left(ScanKind::Scalar, &columns, &dims, &thresholds, live);
        let direct = scan_left_direct(
            xs.iter().map(Vec::as_slice).zip(ys.iter().copied()),
            &dims,
            &thresholds,
            live,
        );
        let kinds = [ScanKind::Bitset, ScanKind::Simd, ScanKind::Auto];
        let mut scanned: Vec<_> = kinds
            .iter()
            .map(|&kind| scan_left(kind, &columns, &dims, &thresholds, live))
            .collect();
        scanned.push(direct);

        let prior = LeafPrior::weakly_informative(0.0, 1.0);
        let mut table = LnGammaTable::new(&prior);
        table.ensure(len);
        let total_sum: f64 = ys.iter().sum();
        let total_sum_sq: f64 = ys.iter().map(|y| y * y).sum();
        let score = |triple: &([f64; 8], [f64; 8], [f64; 8]), k: usize| {
            attempt_score(
                len, total_sum, total_sum_sq,
                triple.0[k], triple.1[k], triple.2[k],
                &prior, &table,
            )
        };
        let argmax = |triple: &([f64; 8], [f64; 8], [f64; 8])| {
            (0..live).fold(0, |best, k| {
                if score(triple, k) > score(triple, best) { k } else { best }
            })
        };

        for (triple, label) in scanned.iter().zip(["bitset", "simd", "auto", "direct"]) {
            for k in 0..live {
                prop_assert_eq!(
                    triple.0[k].to_bits(), reference.0[k].to_bits(),
                    "{}: count diverged at attempt {} (len {})", label, k, len
                );
                prop_assert_eq!(
                    triple.1[k].to_bits(), reference.1[k].to_bits(),
                    "{}: Σy diverged at attempt {} (len {})", label, k, len
                );
                prop_assert_eq!(
                    triple.2[k].to_bits(), reference.2[k].to_bits(),
                    "{}: Σy² diverged at attempt {} (len {})", label, k, len
                );
                prop_assert_eq!(
                    score(triple, k).to_bits(), score(&reference, k).to_bits(),
                    "{}: likelihood diverged at attempt {}", label, k
                );
            }
            prop_assert_eq!(
                argmax(triple), argmax(&reference),
                "{}: selected a different split", label
            );
        }
    }
}
