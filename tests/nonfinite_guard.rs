//! Uniform non-finite observation policy across all surrogate families.
//!
//! A flaky evaluator can hand the learner a NaN or infinite observation at
//! any time. The contract (enforced by `alic_model::validate_observation` at
//! the top of every `update` implementation) is that such an observation is
//! rejected with `ModelError::NonFiniteInput` *before any state mutation*:
//! the model's subsequent predictions must be bitwise unchanged, for every
//! family, for every way the observation can be broken.

use alic_model::{row_views, ActiveSurrogate, ModelError, SurrogateSpec};

fn training_data() -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..40)
        .map(|i| vec![i as f64 / 39.0, (i % 7) as f64])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 1.0 + 2.0 * x[0] + 0.1 * x[1] + 0.3 * x[0] * x[0])
        .collect();
    (xs, ys)
}

fn probes() -> Vec<Vec<f64>> {
    vec![
        vec![0.1, 1.0],
        vec![0.5, 3.0],
        vec![0.9, 6.0],
        vec![0.33, 0.0],
    ]
}

fn snapshot(model: &dyn ActiveSurrogate, probes: &[Vec<f64>]) -> Vec<(u64, u64)> {
    probes
        .iter()
        .map(|p| {
            let pred = model.predict(p).expect("fitted model must predict");
            (pred.mean.to_bits(), pred.variance.to_bits())
        })
        .collect()
}

#[test]
fn a_nan_observation_never_changes_any_familys_predictions() {
    let (xs, ys) = training_data();
    let probes = probes();
    let bad_observations: [(&[f64], f64); 5] = [
        (&[0.5, 2.0], f64::NAN),
        (&[0.5, 2.0], f64::INFINITY),
        (&[0.5, 2.0], f64::NEG_INFINITY),
        (&[f64::NAN, 2.0], 1.0),
        (&[0.5, f64::INFINITY], 1.0),
    ];
    for spec in SurrogateSpec::all() {
        let mut model = spec.build(11);
        model
            .fit(&row_views(&xs), &ys)
            .unwrap_or_else(|e| panic!("{spec}: fit failed: {e}"));
        let before = snapshot(model.as_ref(), &probes);
        let count_before = model.observation_count();
        for (x, y) in bad_observations {
            assert_eq!(
                model.update(x, y).unwrap_err(),
                ModelError::NonFiniteInput,
                "{spec}: non-finite observation ({x:?}, {y}) must be rejected"
            );
        }
        assert_eq!(
            snapshot(model.as_ref(), &probes),
            before,
            "{spec}: rejected observations changed the predictions"
        );
        assert_eq!(
            model.observation_count(),
            count_before,
            "{spec}: rejected observations changed the observation count"
        );
        // The model must still accept good observations afterwards.
        model
            .update(&[0.5, 2.0], 2.1)
            .unwrap_or_else(|e| panic!("{spec}: healthy update after rejection failed: {e}"));
        assert_eq!(model.observation_count(), count_before + 1);
    }
}

#[test]
fn non_finite_training_sets_are_rejected_before_fit() {
    let (mut xs, mut ys) = training_data();
    ys[3] = f64::NAN;
    for spec in SurrogateSpec::all() {
        let mut model = spec.build(11);
        assert_eq!(
            model.fit(&row_views(&xs), &ys).unwrap_err(),
            ModelError::NonFiniteInput,
            "{spec}: NaN target accepted by fit"
        );
    }
    ys[3] = 1.0;
    xs[5][0] = f64::INFINITY;
    for spec in SurrogateSpec::all() {
        let mut model = spec.build(11);
        assert_eq!(
            model.fit(&row_views(&xs), &ys).unwrap_err(),
            ModelError::NonFiniteInput,
            "{spec}: infinite feature accepted by fit"
        );
    }
}
