//! Property test for the campaign runner's headline invariant: a sharded,
//! killed-and-resumed, merged campaign produces **byte-identical** reports
//! to a single-process in-memory run — for random shard counts, kill
//! points and unit execution orders.
//!
//! Each case deals a shuffled unit order round-robin into N shards, kills
//! shard 0 after a random prefix (atomic unit writes mean a real `SIGKILL`
//! is observationally identical to simply not running the remaining units,
//! plus possibly a torn `*.tmp` file — which is also simulated), resumes
//! the ledger to completion, merges from disk, and compares the canonical
//! report JSON against the unsharded baseline string.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;
use rand::seq::SliceRandom;

use alic::core::experiment::ComparisonConfig;
use alic::core::learner::LearnerConfig;
use alic::core::plan::SamplingPlan;
use alic::core::runner::{self, CampaignLedger, CampaignSpec, UnitRecord};
use alic::data::dataset::DatasetConfig;
use alic::model::SurrogateSpec;
use alic::sim::kernel::KernelSpec;
use alic::sim::noise::NoiseProfile;
use alic::sim::space::ParamSpec;
use alic::stats::rng::seeded_rng;

fn toy_kernel(name: &str, surface_seed: u64) -> KernelSpec {
    KernelSpec::new(
        name,
        vec![ParamSpec::unroll("u1"), ParamSpec::unroll("u2")],
        1.0,
        0.5,
        NoiseProfile::moderate(),
    )
    .unwrap()
    .with_surface_seed(surface_seed)
}

/// Two kernels × two model families × the paper's three plans × one
/// repetition = 12 units, each small enough that 64 proptest cases stay
/// fast in debug builds while still crossing every matrix axis.
fn tiny_campaign() -> CampaignSpec {
    CampaignSpec::new(
        vec![toy_kernel("alpha", 3), toy_kernel("beta", 9)],
        vec![SurrogateSpec::dynatree(15), SurrogateSpec::Mean],
        ComparisonConfig {
            learner: LearnerConfig {
                initial_examples: 3,
                initial_observations: 4,
                candidates_per_iteration: 10,
                max_iterations: 8,
                evaluate_every: 4,
                ..Default::default()
            },
            plans: vec![
                SamplingPlan::fixed(4),
                SamplingPlan::one_observation(),
                SamplingPlan::sequential(4),
            ],
            repetitions: 1,
            model: SurrogateSpec::dynatree(15),
            dataset: DatasetConfig {
                configurations: 120,
                observations: 4,
                seed: 0,
            },
            train_size: 90,
            grid_resolution: 24,
            seed: 13,
        },
    )
}

/// The unsharded single-process report, computed once and shared by every
/// proptest case.
fn baseline_json() -> &'static str {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        runner::run_campaign(&tiny_campaign())
            .expect("tiny campaign is internally consistent")
            .to_json_string()
            .expect("campaign report is finite")
    })
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #[test]
    fn sharded_killed_resumed_campaign_merges_bit_identically(
        shard_count in 1usize..5,
        kill_fraction in 0.0f64..1.0,
        order_seed in 0u64..1_000_000,
    ) {
        let spec = tiny_campaign();
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "alic-campaign-resume-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let ledger = CampaignLedger::open(&dir, &spec).unwrap();
        let sink = |record: &UnitRecord| ledger.record(record);

        // Random execution order, dealt round-robin into the shards (so a
        // shard's unit set is arbitrary, not the contiguous CLI layout —
        // the merge must not care).
        let mut indices: Vec<usize> = (0..spec.unit_count()).collect();
        indices.shuffle(&mut seeded_rng(order_seed));
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for (slot, index) in indices.iter().enumerate() {
            shards[slot % shard_count].push(*index);
        }

        // Shard 0 is killed part-way through: only a prefix of its units
        // ever reaches the ledger.
        let kill = (shards[0].len() as f64 * kill_fraction) as usize;
        shards[0].truncate(kill);
        for shard in &shards {
            runner::execute_units(&spec, shard, &sink).unwrap();
        }
        // A kill can also leave a torn temp file behind; it must be ignored
        // by resume and merge alike.
        std::fs::write(dir.join("units").join("unit-000000.json.tmp"), "{torn").unwrap();

        // Resume to completion.
        let completed = ledger.completed().unwrap();
        let remaining: Vec<usize> = (0..spec.unit_count())
            .filter(|i| !completed.contains(i))
            .collect();
        runner::execute_units(&spec, &remaining, &sink).unwrap();

        // Merge from the on-disk records; byte-compare against the
        // unsharded in-memory baseline.
        let report = runner::assemble_report(&spec, ledger.load_all(&spec).unwrap()).unwrap();
        prop_assert_eq!(report.to_json_string().unwrap().as_str(), baseline_json());

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
