//! Protocol robustness: the daemon's engine is total over its input.
//!
//! Two properties pin the serving layer's "malformed input never panics"
//! contract:
//!
//! * **Fuzz totality** — arbitrary byte soup (including invalid UTF-8,
//!   control characters, and truncated commands) fed straight into
//!   [`Engine::handle_line`] never panics and never produces anything but a
//!   structured single-line `ok`/`err` reply, and the engine still serves a
//!   clean session afterwards.
//! * **Chaotic wire** — the same scripted transcript pushed through the
//!   connection-level chaos sites (dropped connections mid-line, short
//!   reads, torn replies) still draws only structured replies, each armed
//!   site's `injections()` counter actually advances (the plane is not
//!   silently inert), and the session's durable state stays consistent.
//!
//! Every test takes the fault plane's process-wide exclusive guard: the
//! plane is global, and a plan installed for one test must never leak
//! injections into a concurrently running one.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::collection;
use proptest::prelude::*;

use alic::serve::chaos::{write_reply, ChaosLines};
use alic::serve::{ConnState, Engine, ServeConfig};
use alic::stats::fault::{self, injections, FaultPlan, FaultSite};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_engine(label: &str) -> (Engine, PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "alic-serve-protocol-{label}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    (Engine::open(ServeConfig::new(&dir)).unwrap(), dir)
}

/// Replies must be a single structured line: an `ok`/`err` prefix and no
/// control characters (error detail is sanitized before it hits the wire).
fn assert_structured(line: &str, reply: &str) {
    assert!(
        reply.starts_with("ok ") || reply.starts_with("err "),
        "{line:?} -> unstructured reply {reply:?}"
    );
    assert!(
        !reply.chars().any(char::is_control),
        "{line:?} -> reply with control characters {reply:?}"
    );
}

proptest! {
    #[test]
    fn arbitrary_byte_streams_never_panic_and_always_answer_structured(
        bytes in collection::vec(0u8..=255, 0..240),
    ) {
        let _guard = fault::exclusive_clean();
        let (mut engine, dir) = temp_engine("fuzz");
        let mut conn = ConnState::new();
        // The transport layer replaces invalid UTF-8 and splits on
        // newlines; everything after that is the engine's problem.
        let soup = String::from_utf8_lossy(&bytes).into_owned();
        for line in soup.split('\n') {
            let response = engine.handle_line(&mut conn, line);
            if let Some(reply) = &response.reply {
                assert_structured(line, reply);
            }
        }
        // Whatever the soup did, the engine still serves clean traffic.
        let mut conn = ConnState::new();
        let reply = engine
            .handle_line(&mut conn, "newsession post-fuzz u:unroll:1:9")
            .reply
            .unwrap();
        prop_assert!(reply.starts_with("ok session "), "{}", reply);
        let reply = engine.handle_line(&mut conn, "observe 4 1.5").reply.unwrap();
        prop_assert!(reply.starts_with("ok observed 1"), "{}", reply);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn oversized_and_garbled_lines_are_parse_errors_not_panics() {
    let _guard = fault::exclusive_clean();
    let (mut engine, dir) = temp_engine("garble");
    let mut conn = ConnState::new();
    for line in [
        "x".repeat(9000),
        "observe".to_string(),
        "observe 3,".to_string(),
        "observe 3 not-a-cost".to_string(),
        "suggest -1".to_string(),
        "newsession".to_string(),
        "newsession k u:bogus-kind".to_string(),
        "attach s1".to_string(),
        "\u{1}\u{2}\u{3}".to_string(),
    ] {
        let reply = engine.handle_line(&mut conn, &line).reply.unwrap();
        assert!(reply.starts_with("err "), "{line:?} -> {reply}");
        assert_structured(&line, &reply);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// One request over the chaotic wire: the line passes through
/// [`ChaosLines`] (drop/short-read sites) and the reply through
/// [`write_reply`] (torn-reply site). `None` models everything a real
/// client would see as a broken connection.
fn wire_request(engine: &mut Engine, conn: &mut ConnState, line: &str) -> Option<String> {
    let framed = format!("{line}\n");
    let mut reader = ChaosLines::new(framed.as_bytes());
    let got = reader.next_line().expect("in-memory reads cannot fail")?;
    let reply = engine.handle_line(conn, &got).reply?;
    let mut out = Vec::new();
    match write_reply(&mut out, &reply) {
        Ok(()) => Some(String::from_utf8(out).unwrap().trim_end().to_string()),
        Err(_) => None,
    }
}

#[test]
fn chaotic_wire_yields_structured_replies_and_counts_injections() {
    let _guard = fault::exclusive(
        FaultPlan::new(17)
            .with_site(FaultSite::ConnDrop, 0.25, Some(3))
            .with_site(FaultSite::ShortRead, 0.25, Some(4))
            .with_site(FaultSite::TornReply, 0.25, Some(3)),
    );
    let (mut engine, dir) = temp_engine("wire");
    let mut conn = ConnState::new();
    let script = [
        "newsession mvt u:unroll:1:9,t:cache-tile:0:5",
        "observe 3,2 1.5",
        "observe 4,1 1.25",
        "best",
        "suggest 2",
        "observe 5,0 1.75",
        "best",
        "sessions",
        "checkpoint",
        "suggest",
        "best",
        "observe 6,3 1.9",
        "sessions",
        "suggest 3",
        "best",
        "checkpoint",
    ];
    // Three rounds spend every site's budget even under unlucky rolls.
    for _round in 0..3 {
        for line in script {
            if let Some(reply) = wire_request(&mut engine, &mut conn, line) {
                assert_structured(line, &reply);
            }
        }
    }
    for site in [
        FaultSite::ConnDrop,
        FaultSite::ShortRead,
        FaultSite::TornReply,
    ] {
        assert!(
            injections(site) > 0,
            "armed site {} never fired: the wire plane is inert",
            site.name()
        );
    }
    // The budgets are bounded, so a short retry loop always out-lasts the
    // remaining chaos; the healed wire then shows consistent durable state.
    let settle = |engine: &mut Engine, conn: &mut ConnState, line: &str| -> String {
        for _ in 0..32 {
            if let Some(reply) = wire_request(engine, conn, line) {
                if reply.starts_with("ok ") {
                    return reply;
                }
            }
        }
        panic!("{line:?} never settled under a budgeted plan")
    };
    // Session ids allocate densely from zero, so once any `newsession`
    // commits (now, if every scripted one was eaten), `s000000` exists.
    if settle(&mut engine, &mut conn, "sessions") == "ok sessions" {
        settle(
            &mut engine,
            &mut conn,
            "newsession mvt u:unroll:1:9,t:cache-tile:0:5",
        );
    }
    let reply = settle(&mut engine, &mut conn, "attach s000000");
    assert!(reply.starts_with("ok attached s000000 obs "), "{reply}");
    settle(&mut engine, &mut conn, "observe 2,2 9.9");
    let reply = settle(&mut engine, &mut conn, "best");
    assert!(reply.starts_with("ok best "), "{reply}");
    std::fs::remove_dir_all(&dir).unwrap();
}
