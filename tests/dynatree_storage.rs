//! Invariants of the arena-backed dynamic-tree storage.
//!
//! Three properties guard the PR 5 storage rewrite:
//!
//! 1. **Cache freshness.** Every tree keeps its dense flat-node traversal
//!    array, its per-leaf moments (predictive moments, marginal likelihood,
//!    density constants) and its per-leaf bounds eagerly maintained.
//!    After *any* fit/update sequence — which exercises resampling,
//!    copy-on-write cloning, structural sharing, grow and prune — every
//!    cached view must equal a bitwise-fresh recomputation
//!    (`DynaTree::validate_caches`).
//! 2. **Thread-count bit-identity of training.** `fit` and `update` run
//!    their weighting and move phases on the thread pool with
//!    per-`(seed, observation, particle)` RNG streams; a model trained on
//!    1 worker thread must be bit-identical to one trained on 4.
//! 3. **Sharing accounting.** Structural sharing never loses or invents
//!    particles: multiplicities over unique trees always sum to the
//!    particle count, and the unique-tree count never exceeds it.

use alic::model::dynatree::{DynaTree, DynaTreeConfig};
use alic::model::{row_views, SurrogateModel};
use proptest::prelude::*;

fn config(particles: usize, seed: u64, min_leaf: usize, grow_attempts: usize) -> DynaTreeConfig {
    DynaTreeConfig {
        particles,
        min_leaf,
        grow_attempts,
        seed,
        ..Default::default()
    }
}

/// Deterministic but seed-shaped training data over the unit square.
fn training_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let a = ((i * 7 + seed as usize) % 23) as f64 / 22.0;
        let b = ((i * 13 + 3 * seed as usize) % 11) as f64 / 10.0;
        xs.push(vec![a, b]);
        ys.push((5.0 * a).sin() + 0.7 * b + 0.05 * ((i + seed as usize) % 5) as f64);
    }
    (xs, ys)
}

proptest! {
    /// Property 1 + 3: after an arbitrary fit/update sequence, the cached
    /// flat nodes, leaf moments and leaf bounds of every live tree equal a
    /// fresh recomputation, and the sharing bookkeeping stays consistent.
    #[test]
    fn caches_match_fresh_recomputation_after_any_training_sequence(
        n_fit in 6usize..40,
        n_updates in 0usize..50,
        particles in 5usize..40,
        seed in 0u64..1000,
        min_leaf in 1usize..4,
        grow_attempts in 1usize..7,
    ) {
        let (xs, ys) = training_data(n_fit, seed);
        let mut model = DynaTree::new(config(particles, seed, min_leaf, grow_attempts));
        model.fit(&row_views(&xs), &ys).unwrap();
        if let Err(e) = model.validate_caches() {
            prop_assert!(false, "after fit: {}", e);
        }

        let (ux, uy) = training_data(n_updates, seed.wrapping_add(17));
        for (x, &y) in ux.iter().zip(&uy) {
            model.update(x, y).unwrap();
        }
        if let Err(e) = model.validate_caches() {
            prop_assert!(false, "after updates: {}", e);
        }
        prop_assert!(model.unique_tree_count() <= particles);
        prop_assert!(model.unique_tree_count() >= 1);
    }
}

/// Property 2: `fit` and `update` are bit-identical across worker-thread
/// counts. Compares the full predictive surface (means and variances) and
/// the ensemble shape, which pin every per-particle state that scoring can
/// observe.
#[test]
fn fit_and_update_are_bit_identical_across_thread_counts() {
    let train = |threads: usize| {
        rayon::set_num_threads(threads);
        let (xs, ys) = training_data(60, 3);
        let mut model = DynaTree::new(config(50, 21, 2, 4));
        model.fit(&row_views(&xs), &ys).unwrap();
        let (ux, uy) = training_data(25, 9);
        for (x, &y) in ux.iter().zip(&uy) {
            model.update(x, y).unwrap();
        }
        rayon::set_num_threads(0);
        let grid: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64 / 19.0, (i / 20) as f64 / 9.0])
            .collect();
        let predictions = model.predict_batch(&row_views(&grid)).unwrap();
        (
            predictions,
            model.mean_leaf_count(),
            model.unique_tree_count(),
            model.observation_count(),
        )
    };
    let serial = train(1);
    let parallel = train(4);
    assert_eq!(serial.0.len(), parallel.0.len());
    for (i, (a, b)) in serial.0.iter().zip(&parallel.0).enumerate() {
        assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "mean diverged at {i}");
        assert_eq!(
            a.variance.to_bits(),
            b.variance.to_bits(),
            "variance diverged at {i}"
        );
    }
    assert_eq!(serial.1, parallel.1, "leaf counts diverged");
    assert_eq!(serial.2, parallel.2, "sharing diverged");
    assert_eq!(serial.3, parallel.3);
}

/// Structural sharing actually engages: a freshly fitted ensemble whose
/// particles all start from one shared root keeps at least some sharing
/// through a short fit (resample duplicates stay shared until a divergent
/// move), and every particle remains addressable.
#[test]
fn structural_sharing_is_bounded_and_scoring_still_works() {
    let (xs, ys) = training_data(12, 5);
    let mut model = DynaTree::new(config(64, 7, 2, 4));
    model.fit(&row_views(&xs), &ys).unwrap();
    let unique = model.unique_tree_count();
    assert!(unique <= 64);
    assert!(
        unique < 64,
        "a 12-point fit should leave some resample duplicates shared (got {unique} unique trees)"
    );
    let p = model.predict(&[0.4, 0.6]).unwrap();
    assert!(p.mean.is_finite() && p.variance >= 0.0);
    model.validate_caches().unwrap();
}
