//! The fault plane's headline property: a campaign executed under a
//! randomized-but-budgeted chaos plan — torn ledger writes, transient I/O
//! and rename failures, panicking and erroring work units, NaN
//! observations, jitter-ladder exhaustion — plus a mid-run kill and resume,
//! heals to a report **byte-identical** to the fault-free run's.
//!
//! Two ingredients make this a theorem rather than a hope:
//!
//! * every fault is *transient and budgeted* (`FaultPlan` budgets), while
//!   every heal loop is *bounded but deeper* (`WRITE_ATTEMPTS` per write,
//!   `UNIT_ATTEMPTS` per unit per pass, `HEAL_PASSES` passes), so a bounded
//!   adversary is always out-lasted;
//! * every unit is a deterministic pure function of the campaign spec, so
//!   re-execution after a panic, error or quarantine reproduces the exact
//!   bytes the fault destroyed, and `ChaosProfiler` replays the true
//!   measurement after an injected NaN without advancing any other RNG
//!   stream.
//!
//! Every test here takes the fault plane's process-wide exclusive guard:
//! the plane is global, and a plan installed for one test must never leak
//! injections into a concurrently running one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;
use rand::seq::SliceRandom;

use alic::core::experiment::ComparisonConfig;
use alic::core::fault::{self, FaultPlan, FaultSite};
use alic::core::learner::LearnerConfig;
use alic::core::plan::SamplingPlan;
use alic::core::runner::{self, CampaignLedger, CampaignSpec};
use alic::data::dataset::DatasetConfig;
use alic::model::gp::GpConfig;
use alic::model::SurrogateSpec;
use alic::sim::kernel::KernelSpec;
use alic::sim::noise::NoiseProfile;
use alic::sim::space::ParamSpec;
use alic::stats::rng::seeded_rng;

fn toy_kernel(name: &str, surface_seed: u64) -> KernelSpec {
    KernelSpec::new(
        name,
        vec![ParamSpec::unroll("u1"), ParamSpec::unroll("u2")],
        1.0,
        0.5,
        NoiseProfile::moderate(),
    )
    .unwrap()
    .with_surface_seed(surface_seed)
}

/// One kernel × two models × three plans × one repetition = 6 units. The
/// exact GP is on the model axis so the jitter-exhaustion site has a
/// Cholesky ladder to break.
fn tiny_campaign() -> CampaignSpec {
    CampaignSpec::new(
        vec![toy_kernel("alpha", 3)],
        vec![
            SurrogateSpec::dynatree(15),
            SurrogateSpec::Gp(GpConfig::default()),
        ],
        ComparisonConfig {
            learner: LearnerConfig {
                initial_examples: 3,
                initial_observations: 4,
                candidates_per_iteration: 10,
                max_iterations: 8,
                evaluate_every: 4,
                ..Default::default()
            },
            plans: vec![
                SamplingPlan::fixed(4),
                SamplingPlan::one_observation(),
                SamplingPlan::sequential(4),
            ],
            repetitions: 1,
            model: SurrogateSpec::dynatree(15),
            dataset: DatasetConfig {
                configurations: 120,
                observations: 4,
                seed: 0,
            },
            train_size: 90,
            grid_resolution: 24,
            seed: 13,
        },
    )
}

/// The fault-free report, computed once under a clean (guarded) plane.
fn baseline_json() -> &'static str {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let _guard = fault::exclusive_clean();
        runner::run_campaign(&tiny_campaign())
            .expect("tiny campaign is internally consistent")
            .to_json_string()
            .expect("campaign report is finite")
    })
}

/// A chaos plan covering every injection site. The budgets are sized so the
/// bounded heal loops out-last even an adversarial roll sequence: at most
/// two unit-killing passes (each needs 3 same-pass faults on one unit out
/// of the 2+2+2 panic/eval/jitter budget) plus two torn-record passes fit
/// in `HEAL_PASSES = 4`, and the io+rename budget (2+2) is strictly below
/// the 5 attempts every atomic write retries, so no write — not even the
/// manifest, written outside the heal loop — can ever exhaust.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_site(FaultSite::WriteIo, 0.2, Some(2))
        .with_site(FaultSite::TornWrite, 0.2, Some(2))
        .with_site(FaultSite::RenameFail, 0.2, Some(2))
        .with_site(FaultSite::UnitPanic, 0.15, Some(2))
        .with_site(FaultSite::EvalError, 0.15, Some(2))
        .with_site(FaultSite::ObservationNan, 0.05, Some(20))
        .with_site(FaultSite::JitterExhaustion, 0.1, Some(2))
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #[test]
    fn chaotic_killed_resumed_campaign_heals_bit_identically(
        chaos_seed in 0u64..1_000_000,
        kill_fraction in 0.0f64..1.0,
        order_seed in 0u64..1_000_000,
    ) {
        // Baseline first: computing it takes the exclusive guard itself, and
        // the guard's mutex is not reentrant.
        let baseline = baseline_json();
        let spec = tiny_campaign();
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "alic-chaos-campaign-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let _guard = fault::exclusive(chaos_plan(chaos_seed));
        let ledger = CampaignLedger::open(&dir, &spec).unwrap();

        // Phase 1: a shuffled prefix of the unit range, then a simulated
        // SIGKILL — a stray tmp file and one record truncated mid-write.
        let mut indices: Vec<usize> = (0..spec.unit_count()).collect();
        indices.shuffle(&mut seeded_rng(order_seed));
        let kill = (indices.len() as f64 * kill_fraction) as usize;
        let outcome = runner::heal_campaign(&spec, &ledger, &indices[..kill]).unwrap();
        prop_assert!(outcome.is_healed(), "phase 1 failures: {:?}", outcome.failures);
        std::fs::write(dir.join("units").join("unit-000000.json.tmp"), "{torn").unwrap();
        if let Some(&victim) = indices[..kill].first() {
            let path = dir.join("units").join(format!("unit-{victim:06}.json"));
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        }

        // Phase 2: resume. The heal loop's recovery scan must quarantine the
        // truncated record and re-execute it alongside the remaining units.
        let completed = ledger.completed().unwrap();
        let remaining: Vec<usize> = (0..spec.unit_count())
            .filter(|i| !completed.contains(i))
            .collect();
        let outcome = runner::heal_campaign(&spec, &ledger, &remaining).unwrap();
        prop_assert!(outcome.is_healed(), "phase 2 failures: {:?}", outcome.failures);

        // The healed ledger merges — and writes through the still-chaotic
        // I/O path — to the byte-identical fault-free report.
        let report = runner::assemble_report(&spec, ledger.load_all(&spec).unwrap()).unwrap();
        prop_assert_eq!(report.to_json_string().unwrap().as_str(), baseline);
        ledger.write_report(&report).unwrap();
        let on_disk = std::fs::read_to_string(dir.join("report.json")).unwrap();
        prop_assert_eq!(on_disk.trim_end(), baseline);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn chaos_campaign_cli_heals_to_the_fault_free_report() {
    // The same property end-to-end through the campaign binary's library
    // entry point and its `--chaos` flag.
    let baseline = baseline_json();
    let spec = tiny_campaign();
    let dir = std::env::temp_dir().join(format!("alic-chaos-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let _guard = fault::exclusive(chaos_plan(42));
    let ledger = CampaignLedger::open(&dir, &spec).unwrap();
    let outcome =
        runner::heal_campaign(&spec, &ledger, &(0..spec.unit_count()).collect::<Vec<_>>()).unwrap();
    assert!(outcome.is_healed(), "failures: {:?}", outcome.failures);
    let report = runner::assemble_report(&spec, ledger.load_all(&spec).unwrap()).unwrap();
    assert_eq!(report.to_json_string().unwrap().as_str(), baseline);
    assert!(report.failures.is_empty());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_faults_are_actually_firing() {
    // Guard against a silently inert plane: with rates this high over six
    // units, a run with zero injections would mean the sites are
    // disconnected, and the byte-identity above would be vacuous.
    let _baseline = baseline_json();
    let spec = tiny_campaign();
    let dir = std::env::temp_dir().join(format!("alic-chaos-fire-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let _guard = fault::exclusive(
        FaultPlan::new(7)
            .with_site(FaultSite::TornWrite, 0.5, Some(2))
            .with_site(FaultSite::EvalError, 0.5, Some(2))
            .with_site(FaultSite::ObservationNan, 0.2, Some(10)),
    );
    let ledger = CampaignLedger::open(&dir, &spec).unwrap();
    let outcome =
        runner::heal_campaign(&spec, &ledger, &(0..spec.unit_count()).collect::<Vec<_>>()).unwrap();
    assert!(outcome.is_healed(), "failures: {:?}", outcome.failures);
    let fired: u64 = FaultSite::ALL.iter().map(|&s| fault::injections(s)).sum();
    assert!(fired > 0, "no chaos site ever fired");

    std::fs::remove_dir_all(&dir).unwrap();
}
