//! The serving layer's headline property: a tuning session driven through a
//! budgeted all-site chaos plan — torn checkpoint writes, transient I/O and
//! rename failures, injected request panics, jitter-ladder exhaustion,
//! dropped connections, short reads, torn replies — plus a SIGKILL and
//! restart at an arbitrary point, settles every request to a reply
//! **byte-identical** to the fault-free run's.
//!
//! The client driver here is the protocol's documented recovery recipe:
//!
//! * re-`attach` before each request — the reply's observation count
//!   reconciles the at-least-once window (an `observe` whose `ok` was lost
//!   after the durable commit is *settled*, not retried);
//! * retry on any structured `err` or broken connection — every fault is
//!   transient and budgeted, while the retry loop is bounded but deeper, so
//!   a bounded adversary is always out-lasted;
//! * `suggest` and `best` are pure functions of durable state (the suggest
//!   stream is keyed on the observation count), so their replies are
//!   byte-stable across retries, evictions, and restarts.
//!
//! The workload's lines are chosen so the short-read site's
//! half-truncation can never re-parse as a *valid mutating* command — a
//! torn request always draws a structured parse error instead of silently
//! committing something the baseline never saw.
//!
//! Every test takes the fault plane's process-wide exclusive guard: the
//! plane is global, and a plan installed for one test must never leak
//! injections into a concurrently running one.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use alic::serve::chaos::{write_reply, ChaosLines};
use alic::serve::{ConnState, Engine, ServeConfig};
use alic::stats::fault::{self, FaultPlan, FaultSite};

/// Bounded-but-deeper retry depth: total chaos budget across all sites is
/// far below this, so every loop below terminates with the fault budgets
/// spent at the latest.
const MAX_TRIES: usize = 64;

const NEWSESSION: &str = "newsession mvt u:unroll:1:20,t:cache-tile:0:6 gp";

#[derive(Debug, Clone, Copy)]
enum Op {
    Observe(&'static str),
    Suggest(usize),
    Best,
}

impl Op {
    fn line(&self) -> String {
        match self {
            // Every observe line stays under 22 bytes: its half-truncation
            // then never reaches three tokens, so a short read cannot forge
            // a different valid observation.
            Op::Observe(args) => format!("observe {args}"),
            Op::Suggest(k) => format!("suggest {k}"),
            Op::Best => "best".to_string(),
        }
    }
}

/// One session's workload: enough observations to fit and update the exact
/// GP (so the jitter-exhaustion site has a Cholesky ladder to break), with
/// pure reads interleaved at every stage.
fn workload() -> Vec<Op> {
    vec![
        Op::Observe("3,2 4.0"),
        Op::Observe("9,1 3.1"),
        Op::Best,
        Op::Observe("14,5 2.8"),
        Op::Observe("6,3 3.4"),
        Op::Suggest(2),
        Op::Best,
        Op::Observe("18,0 2.9"),
        Op::Suggest(3),
        Op::Observe("11,4 3.0"),
        Op::Best,
        Op::Suggest(1),
    ]
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "alic-serve-resume-{label}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The fault-free reply per workload op, computed once under a clean
/// (guarded) plane.
fn baseline_replies() -> &'static [String] {
    static BASELINE: OnceLock<Vec<String>> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let _guard = fault::exclusive_clean();
        let dir = temp_dir("baseline");
        let mut engine = Engine::open(ServeConfig::new(&dir)).unwrap();
        let mut conn = ConnState::new();
        let reply = engine.handle_line(&mut conn, NEWSESSION).reply.unwrap();
        assert!(reply.starts_with("ok session s000000 "), "{reply}");
        let replies = workload()
            .iter()
            .map(|op| {
                let reply = engine.handle_line(&mut conn, &op.line()).reply.unwrap();
                assert!(reply.starts_with("ok "), "{:?} -> {reply}", op.line());
                reply
            })
            .collect();
        std::fs::remove_dir_all(&dir).unwrap();
        replies
    })
}

/// A chaos plan arming every site of the plane. The storage, compute, and
/// connection sites all fire on the serving path; the campaign-only sites
/// (eval errors, NaN observations) are armed for completeness and simply
/// never trigger here. All budgets are finite, so the retrying driver
/// always out-lasts the plan.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_site(FaultSite::WriteIo, 0.2, Some(2))
        .with_site(FaultSite::TornWrite, 0.2, Some(2))
        .with_site(FaultSite::RenameFail, 0.2, Some(2))
        .with_site(FaultSite::UnitPanic, 0.15, Some(2))
        .with_site(FaultSite::EvalError, 0.15, Some(2))
        .with_site(FaultSite::ObservationNan, 0.05, Some(2))
        .with_site(FaultSite::JitterExhaustion, 0.1, Some(2))
        .with_site(FaultSite::ConnDrop, 0.15, Some(3))
        .with_site(FaultSite::ShortRead, 0.15, Some(3))
        .with_site(FaultSite::TornReply, 0.15, Some(3))
}

/// One request over the chaotic wire; `None` is everything a real client
/// sees as a broken connection (request lost mid-line or reply torn).
fn wire_request(engine: &mut Engine, conn: &mut ConnState, line: &str) -> Option<String> {
    let framed = format!("{line}\n");
    let mut reader = ChaosLines::new(framed.as_bytes());
    let got = reader.next_line().expect("in-memory reads cannot fail")?;
    let reply = engine.handle_line(conn, &got).reply?;
    let mut out = Vec::new();
    match write_reply(&mut out, &reply) {
        Ok(()) => Some(String::from_utf8(out).unwrap().trim_end().to_string()),
        Err(_) => None,
    }
}

/// Creates the workload's session, retrying through the chaos. A lost
/// `newsession` reply is ambiguous (the commit happens before the ack), so
/// the driver probes the read-only `sessions` listing before retrying:
/// ids allocate densely from zero, so the first committed session is
/// always `s000000` and no duplicate is ever created.
fn create_session(engine: &mut Engine, conn: &mut ConnState) -> String {
    for _ in 0..MAX_TRIES {
        match wire_request(engine, conn, NEWSESSION) {
            Some(reply) if reply.starts_with("ok session ") => {
                return reply.split(' ').nth(2).unwrap().to_string();
            }
            // A structured error never commits a session: retry directly.
            Some(_) => continue,
            None => {
                for _ in 0..MAX_TRIES {
                    match wire_request(engine, conn, "sessions") {
                        Some(reply) if reply == "ok sessions" => break,
                        Some(reply) if reply.starts_with("ok sessions ") => {
                            return reply.split(' ').nth(2).unwrap().to_string();
                        }
                        _ => continue,
                    }
                }
            }
        }
    }
    panic!("newsession never settled under a budgeted plan")
}

/// Settles one workload op to its final `ok` reply, reconciling the
/// at-least-once window through `attach`'s observation count.
fn settle(
    engine: &mut Engine,
    conn: &mut ConnState,
    sid: &str,
    op: Op,
    obs_done: &mut usize,
) -> String {
    let attach = format!("attach {sid}");
    let prefix = format!("ok attached {sid} obs ");
    for _ in 0..MAX_TRIES {
        let Some(reply) = wire_request(engine, conn, &attach) else {
            continue;
        };
        let Some(rest) = reply.strip_prefix(prefix.as_str()) else {
            continue; // structured err (panic/io/busy/...): retry
        };
        let durable: usize = rest.parse().unwrap();
        if matches!(op, Op::Observe(_)) && durable == *obs_done + 1 {
            // Committed but the ack was lost on the wire: settled. The
            // synthesized reply is exactly what the uninterrupted daemon
            // said, because the count is the whole payload.
            *obs_done += 1;
            return format!("ok observed {durable}");
        }
        assert_eq!(
            durable, *obs_done,
            "durable log diverged from the acknowledged prefix"
        );
        let Some(reply) = wire_request(engine, conn, &op.line()) else {
            continue;
        };
        if reply.starts_with("ok ") {
            if matches!(op, Op::Observe(_)) {
                *obs_done += 1;
            }
            return reply;
        }
        // Structured err — shed, panicked, model-rejected, or a short read
        // garbled the request into a parse error. All transient: retry.
    }
    panic!("{:?} never settled under a budgeted plan", op.line())
}

/// Drives the workload against a chaotic daemon, SIGKILLing (dropping the
/// engine with no shutdown handshake) and restarting before op `kill_at`,
/// and asserts every settled reply byte-identical to the baseline.
fn drive_chaotic(dir: &Path, kill_at: usize) {
    let mut engine = Engine::open(ServeConfig::new(dir)).unwrap();
    let mut conn = ConnState::new();
    let sid = create_session(&mut engine, &mut conn);
    assert_eq!(sid, "s000000");
    let baseline = baseline_replies();
    let mut obs_done = 0usize;
    for (i, op) in workload().iter().enumerate() {
        if i == kill_at {
            drop(engine);
            engine = Engine::open(ServeConfig::new(dir)).unwrap();
            conn = ConnState::new();
        }
        let reply = settle(&mut engine, &mut conn, &sid, *op, &mut obs_done);
        assert_eq!(reply, baseline[i], "op {i} ({:?}) diverged", op.line());
    }
}

proptest! {
    #[test]
    fn chaotic_killed_restarted_session_settles_to_baseline_replies(
        chaos_seed in 0u64..1_000_000,
        kill_at in 0usize..12,
    ) {
        // Baseline first: computing it takes the exclusive guard itself,
        // and the guard's mutex is not reentrant.
        let _ = baseline_replies();
        assert_eq!(workload().len(), 12);
        let dir = temp_dir("chaos");
        let _guard = fault::exclusive(chaos_plan(chaos_seed));
        drive_chaotic(&dir, kill_at);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn injected_faults_are_actually_firing_on_the_serving_path() {
    // Guard against a silently inert plane: with rates this high over the
    // workload, zero injections would mean the serving path is
    // disconnected from the chaos plane, and the byte-identity above
    // would be vacuous.
    let _ = baseline_replies();
    let dir = temp_dir("fire");
    let _guard = fault::exclusive(
        FaultPlan::new(7)
            .with_site(FaultSite::WriteIo, 0.5, Some(2))
            .with_site(FaultSite::UnitPanic, 0.3, Some(2))
            .with_site(FaultSite::TornReply, 0.3, Some(2)),
    );
    drive_chaotic(&dir, 6);
    let fired: u64 = FaultSite::ALL.iter().map(|&s| fault::injections(s)).sum();
    assert!(fired > 0, "no chaos site ever fired");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The stochastic model family survives the kill too: a dynatree session's
/// pure reads are byte-identical across a restart (the checkpoint replays
/// the observation log through the same seeded fit/update sequence, not a
/// serialized particle cloud).
#[test]
fn dynatree_session_restarts_bit_identically() {
    let _guard = fault::exclusive_clean();
    let dir = temp_dir("dynatree");
    let mut engine = Engine::open(ServeConfig::new(&dir)).unwrap();
    let mut conn = ConnState::new();
    let reply = engine
        .handle_line(
            &mut conn,
            "newsession mvt u:unroll:1:20,t:cache-tile:0:6 dynatree",
        )
        .reply
        .unwrap();
    assert!(reply.starts_with("ok session s000000 "), "{reply}");
    for op in workload() {
        if let Op::Observe(_) = op {
            let reply = engine.handle_line(&mut conn, &op.line()).reply.unwrap();
            assert!(reply.starts_with("ok observed "), "{reply}");
        }
    }
    let best = engine.handle_line(&mut conn, "best").reply.unwrap();
    let suggest = engine.handle_line(&mut conn, "suggest 4").reply.unwrap();
    drop(engine); // SIGKILL: no flush, no handshake.

    let mut engine = Engine::open(ServeConfig::new(&dir)).unwrap();
    let mut conn = ConnState::new();
    let reply = engine
        .handle_line(&mut conn, "attach s000000")
        .reply
        .unwrap();
    assert_eq!(reply, "ok attached s000000 obs 6");
    assert_eq!(engine.handle_line(&mut conn, "best").reply.unwrap(), best);
    assert_eq!(
        engine.handle_line(&mut conn, "suggest 4").reply.unwrap(),
        suggest
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
