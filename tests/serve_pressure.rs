//! Resource-pressure survival: the degradation ladder, the drain protocol,
//! and the unified retry policy under randomized ENOSPC/stall schedules.
//!
//! The capstone property: a session driven through random out-of-space and
//! stall injections — with a client that retries through every structured
//! `err` — settles every request to a reply **byte-identical** to the
//! fault-free run's, ends the run back in the `healthy` ladder state, and a
//! final `drain` reports every session flushed with its checkpoint
//! byte-identical to the fault-free checkpoint. Replies under pressure are
//! thus a prefix-consistent degradation of the fault-free run: the shed
//! requests disappear, the settled ones are exactly the baseline's.
//!
//! The deterministic tests below pin the individual mechanisms: ladder
//! transitions (healthy → shedding-writes → healthy), the exponential
//! `retry-after-ms` hint and its reset, the watchdog's `err stuck`
//! detach/re-attach cycle, and the structured `drained ok <n> failed <m>`
//! failure report.
//!
//! Every test manipulates the process-global fault plane, so each takes
//! the plane's exclusive guard.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;

use alic::serve::{ConnState, Engine, HealthState, ServeConfig};
use alic::stats::fault::{self, FaultPlan, FaultSite};
use alic::stats::policy;

/// Bounded-but-deeper retry depth: the chaos budgets below total far less,
/// so every settle loop terminates with the budgets spent at the latest.
const MAX_TRIES: usize = 96;

const NEWSESSION: &str = "newsession mvt u:unroll:1:20,t:cache-tile:0:6 gp";
const SID: &str = "s000000";

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "alic-serve-pressure-{label}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The pressure config: a short deadline so injected stalls overrun it, a
/// tight watchdog grace so the watchdog (3ms poll) flags them well within
/// the test, and the default cadence of 1 so every acknowledged observe is
/// durable before its reply.
fn pressure_config(dir: &Path) -> ServeConfig {
    let mut config = ServeConfig::new(dir);
    config.deadline = Duration::from_millis(50);
    config.watchdog_grace = 3.0;
    config
}

/// The workload ends on an `observe`: its settled `ok` proves the ladder
/// re-admitted writes, i.e. the probe promoted the engine back to healthy.
fn workload() -> Vec<&'static str> {
    vec![
        "observe 3,2 4.0",
        "observe 9,1 3.1",
        "best",
        "observe 14,5 2.8",
        "suggest 2",
        "observe 6,3 3.4",
        "best",
        "observe 18,0 2.9",
    ]
}

/// Fault-free replies plus the fault-free final checkpoint bytes, computed
/// once under a clean (guarded) plane.
fn baseline() -> &'static (Vec<String>, String) {
    static BASELINE: OnceLock<(Vec<String>, String)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let _guard = fault::exclusive_clean();
        let dir = temp_dir("baseline");
        let mut engine = Engine::open(pressure_config(&dir)).unwrap();
        let mut conn = ConnState::new();
        let reply = engine.handle_line(&mut conn, NEWSESSION).reply.unwrap();
        assert!(reply.starts_with("ok session s000000 "), "{reply}");
        let replies = workload()
            .iter()
            .map(|line| {
                let reply = engine.handle_line(&mut conn, line).reply.unwrap();
                assert!(reply.starts_with("ok "), "{line:?} -> {reply}");
                reply
            })
            .collect();
        let checkpoint =
            std::fs::read_to_string(dir.join("sessions").join(format!("{SID}.json"))).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        (replies, checkpoint)
    })
}

/// A pressure plan: out-of-space failures on the checkpoint writer at rate
/// 1.0, so with budget >= 5 the first commits exhaust
/// `RetryPolicy::LEDGER`'s attempts and trip the ladder, while the tail of
/// the budget is silently absorbed by the retries; occasional fd
/// exhaustion; and a small stall budget (each stall sleeps ~6x the
/// deadline, so rate and budget stay low to bound wall-clock).
fn pressure_plan(seed: u64, enospc: u64, stall: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_site(FaultSite::Enospc, 1.0, Some(enospc))
        .with_site(FaultSite::FdLimit, 0.2, Some(2))
        .with_site(FaultSite::Stall, 0.05, Some(stall))
}

/// Settles one workload line to its final `ok` reply, reconciling the
/// at-least-once window through `attach`'s observation count (an `observe`
/// whose commit landed before its reply was shed is settled, not retried).
/// Every structured `err` — degraded, busy, deadline, stuck, io — is
/// transient under a budgeted plan.
fn settle(engine: &mut Engine, conn: &mut ConnState, line: &str, obs_done: &mut usize) -> String {
    let attach = format!("attach {SID}");
    let prefix = format!("ok attached {SID} obs ");
    let is_observe = line.starts_with("observe ");
    for _ in 0..MAX_TRIES {
        let Some(reply) = engine.handle_line(conn, &attach).reply else {
            continue;
        };
        let Some(rest) = reply.strip_prefix(prefix.as_str()) else {
            continue; // structured err (degraded/stuck/busy/...): retry
        };
        let durable: usize = rest.parse().unwrap();
        if is_observe && durable == *obs_done + 1 {
            *obs_done += 1;
            return format!("ok observed {durable}");
        }
        assert_eq!(
            durable, *obs_done,
            "durable log diverged from the acknowledged prefix"
        );
        let Some(reply) = engine.handle_line(conn, line).reply else {
            continue;
        };
        if reply.starts_with("ok ") {
            if is_observe {
                *obs_done += 1;
            }
            return reply;
        }
    }
    panic!("{line:?} never settled under a budgeted plan")
}

/// Creates the workload's session, retrying through the pressure. A
/// `newsession` shed by the ladder commits nothing (the checkpoint write
/// failed before the id was consumed), but one flagged by the watchdog
/// (`err stuck` after an injected stall) may well have committed — so the
/// driver probes the `sessions` listing before re-creating, and attaches
/// to `s000000` if the first attempt already landed.
fn create_session(engine: &mut Engine, conn: &mut ConnState) {
    for _ in 0..MAX_TRIES {
        let reply = engine.handle_line(conn, NEWSESSION).reply.unwrap();
        if reply.starts_with("ok session ") {
            assert!(reply.starts_with("ok session s000000 "), "{reply}");
            return;
        }
        for _ in 0..MAX_TRIES {
            let Some(listing) = engine.handle_line(conn, "sessions").reply else {
                continue;
            };
            if listing == "ok sessions" {
                break; // nothing committed: safe to re-create
            }
            if listing.starts_with("ok sessions s000000") {
                let attach = engine.handle_line(conn, &format!("attach {SID}")).reply;
                if attach.is_some_and(|r| r.starts_with("ok attached ")) {
                    return;
                }
            }
        }
    }
    panic!("newsession never settled under a budgeted plan")
}

proptest! {
    #[test]
    fn pressured_session_settles_to_baseline_and_drains_clean(
        chaos_seed in 0u64..1_000_000,
        enospc in 1u64..16,
        stall in 0u64..2,
    ) {
        // Baseline first: it takes the (non-reentrant) exclusive guard.
        let (base_replies, base_checkpoint) = baseline();
        let dir = temp_dir("pressure");
        let _guard = fault::exclusive(pressure_plan(chaos_seed, enospc, stall));

        let mut engine = Engine::open(pressure_config(&dir)).unwrap();
        let mut conn = ConnState::new();
        create_session(&mut engine, &mut conn);
        let mut obs_done = 0usize;
        for (i, line) in workload().iter().enumerate() {
            let reply = settle(&mut engine, &mut conn, line, &mut obs_done);
            prop_assert_eq!(&reply, &base_replies[i], "op {} ({:?}) diverged", i, line);
        }

        // The pressure subsides (leftover budget would otherwise stall or
        // shed the control verbs below); what the chaos already proved —
        // the byte-identical settled replies — stands.
        fault::deactivate();

        // The final settled observe was admitted, so the ladder is back at
        // healthy whatever it walked through in between.
        prop_assert_eq!(engine.health_state(), HealthState::Healthy);
        let health = engine.handle_line(&mut conn, "health").reply.unwrap();
        prop_assert!(health.starts_with("ok health state=healthy "), "{}", health);

        // Drain: cadence 1 means nothing is dirty, so the drain reports
        // every session safe.
        let drained = engine.handle_line(&mut conn, "drain").reply.unwrap();
        prop_assert!(
            drained.starts_with("ok drained ok 1 failed 0"),
            "{}", drained
        );
        // Draining is terminal: no new work, reads included.
        let shed = engine.handle_line(&mut conn, "observe 1,1 9.9").reply.unwrap();
        prop_assert!(shed.starts_with("err draining "), "{}", shed);
        let health = engine.handle_line(&mut conn, "health").reply.unwrap();
        prop_assert!(health.starts_with("ok health state=draining "), "{}", health);

        // Every acknowledged observe survived into the checkpoint, which is
        // byte-identical to the fault-free run's.
        let checkpoint =
            std::fs::read_to_string(dir.join("sessions").join(format!("{SID}.json"))).unwrap();
        prop_assert_eq!(&checkpoint, base_checkpoint);
        drop(engine);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Ladder transitions are observable through `health`, and the
/// `retry-after-ms` hint backs off exponentially across consecutive sheds
/// and resets after a successful admission (the satellite regression for
/// the unified `RetryPolicy::SERVE_HINT`).
#[test]
fn degraded_hints_back_off_and_reset_after_readmission() {
    let _guard = fault::exclusive_clean();
    let dir = temp_dir("ladder");
    // Default config: the 2s deadline keeps the watchdog and cooperative
    // shedding out of this test's way.
    let mut engine = Engine::open(ServeConfig::new(&dir)).unwrap();
    let mut conn = ConnState::new();
    let reply = engine.handle_line(&mut conn, NEWSESSION).reply.unwrap();
    assert!(reply.starts_with("ok session "), "{reply}");
    assert_eq!(engine.health_state(), HealthState::Healthy);
    let sleeps_before = policy::sleeps();

    // Every checkpoint write hits ENOSPC: the first observe exhausts the
    // ledger policy's 5 attempts and demotes the ladder to shedding-writes.
    fault::install(FaultPlan::new(3).with_site(FaultSite::Enospc, 1.0, Some(1000)));
    let reply = engine
        .handle_line(&mut conn, "observe 3,2 4.0")
        .reply
        .unwrap();
    assert!(
        reply.starts_with("err degraded retry-after-ms 50 "),
        "{reply}"
    );
    assert_eq!(engine.health_state(), HealthState::SheddingWrites);
    assert!(
        policy::sleeps() > sleeps_before,
        "the unified retry policy never slept while ENOSPC was firing"
    );

    // While degraded (and the probe still failing), consecutive write
    // attempts shed with an exponentially backed-off hint...
    for expected in ["100", "200", "400"] {
        let reply = engine
            .handle_line(&mut conn, "observe 3,2 4.0")
            .reply
            .unwrap();
        let prefix = format!("err degraded retry-after-ms {expected} ");
        assert!(reply.starts_with(&prefix), "want {prefix:?}, got {reply}");
    }
    // ...while reads keep answering (no observation committed yet, so the
    // read is `suggest`, which needs none).
    let reply = engine.handle_line(&mut conn, "suggest 1").reply.unwrap();
    assert!(
        reply.starts_with("ok suggest "),
        "shedding-writes must serve reads: {reply}"
    );
    let health = engine.handle_line(&mut conn, "health").reply.unwrap();
    assert!(
        health.starts_with("ok health state=shedding-writes "),
        "{health}"
    );

    // Disk recovers: the next admission probe promotes back to healthy,
    // the observe goes through, and the hint streak resets.
    fault::deactivate();
    let reply = engine
        .handle_line(&mut conn, "observe 3,2 4.0")
        .reply
        .unwrap();
    assert_eq!(reply, "ok observed 1");
    assert_eq!(engine.health_state(), HealthState::Healthy);

    fault::install(FaultPlan::new(5).with_site(FaultSite::Enospc, 1.0, Some(1000)));
    let reply = engine
        .handle_line(&mut conn, "observe 9,1 3.1")
        .reply
        .unwrap();
    assert!(
        reply.starts_with("err degraded retry-after-ms 50 "),
        "hint streak must reset after a successful admission: {reply}"
    );
    fault::deactivate();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The watchdog flags a stalled request, detaches its session like the
/// panic path, and a re-attach restores it from the durable checkpoint.
#[test]
fn watchdog_detaches_a_stalled_request_and_reattach_restores() {
    let _guard = fault::exclusive_clean();
    let dir = temp_dir("watchdog");
    let mut config = pressure_config(&dir);
    config.deadline = Duration::from_millis(30);
    config.watchdog_grace = 2.0;
    let mut engine = Engine::open(config).unwrap();
    let mut conn = ConnState::new();
    engine.handle_line(&mut conn, NEWSESSION).reply.unwrap();
    for line in ["observe 3,2 4.0", "observe 9,1 3.1"] {
        let reply = engine.handle_line(&mut conn, line).reply.unwrap();
        assert!(reply.starts_with("ok observed "), "{reply}");
    }

    // One stall: the request sleeps ~4x its deadline, the watchdog (limit
    // 2x) flags it, and the engine enforces the flag on completion.
    fault::install(FaultPlan::new(9).with_site(FaultSite::Stall, 1.0, Some(1)));
    let reply = engine
        .handle_line(&mut conn, &format!("attach {SID}"))
        .reply
        .unwrap();
    assert!(reply.starts_with("err stuck "), "{reply}");
    fault::deactivate();

    // The stuck session was detached exactly like the panic path...
    let reply = engine.handle_line(&mut conn, "best").reply.unwrap();
    assert!(reply.starts_with("err no-session "), "{reply}");
    // ...and a re-attach restores it from its checkpoint, nothing lost.
    let reply = engine
        .handle_line(&mut conn, &format!("attach {SID}"))
        .reply
        .unwrap();
    assert_eq!(reply, format!("ok attached {SID} obs 2"));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Drain failures are reported structurally — one `drained ok <n> failed
/// <m>` line naming each failed session — not as free-form stderr.
#[test]
fn drain_reports_failed_flushes_per_session() {
    let _guard = fault::exclusive_clean();
    let dir = temp_dir("drainfail");
    let mut config = ServeConfig::new(&dir);
    config.checkpoint_every = 10; // keep the session dirty for the drain
    let mut engine = Engine::open(config).unwrap();
    let mut conn = ConnState::new();
    engine.handle_line(&mut conn, NEWSESSION).reply.unwrap();
    let reply = engine
        .handle_line(&mut conn, "observe 3,2 4.0")
        .reply
        .unwrap();
    assert_eq!(reply, "ok observed 1");

    // The flush hits a dead disk: the drain must say which session stayed
    // volatile instead of quietly exiting.
    fault::install(FaultPlan::new(13).with_site(FaultSite::Enospc, 1.0, Some(1000)));
    let reply = engine.handle_line(&mut conn, "drain").reply.unwrap();
    assert_eq!(reply, format!("ok drained ok 0 failed 1 {SID}=failed"));
    fault::deactivate();

    // Draining pins the ladder: recovery does not re-admit work.
    let reply = engine
        .handle_line(&mut conn, "observe 9,1 3.1")
        .reply
        .unwrap();
    assert!(reply.starts_with("err draining "), "{reply}");
    // A second drain with the disk back retries the flush and succeeds.
    let reply = engine.handle_line(&mut conn, "drain").reply.unwrap();
    assert_eq!(reply, format!("ok drained ok 1 failed 0 {SID}=flushed"));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The `fdlimit` site reaches the directory-scan path with a structured
/// reply, and `health` surfaces per-site injection counters.
#[test]
fn fdlimit_fails_sessions_scan_structurally_and_health_counts_it() {
    let _guard = fault::exclusive_clean();
    let dir = temp_dir("fdlimit");
    let mut engine = Engine::open(ServeConfig::new(&dir)).unwrap();
    let mut conn = ConnState::new();
    engine.handle_line(&mut conn, NEWSESSION).reply.unwrap();

    fault::install(FaultPlan::new(21).with_site(FaultSite::FdLimit, 1.0, Some(1)));
    let reply = engine.handle_line(&mut conn, "sessions").reply.unwrap();
    assert!(
        reply.starts_with("err io ") && reply.contains("file-descriptor exhaustion"),
        "{reply}"
    );
    let health = engine.handle_line(&mut conn, "health").reply.unwrap();
    assert!(health.contains("fdlimit:1"), "{health}");
    fault::deactivate();

    let reply = engine.handle_line(&mut conn, "sessions").reply.unwrap();
    assert_eq!(reply, format!("ok sessions {SID}"));
    std::fs::remove_dir_all(&dir).unwrap();
}
