//! End-to-end integration tests spanning the whole workspace: simulator →
//! dataset → dynamic-tree model → active learner → evaluation.

use alic::core::prelude::*;
use alic::data::dataset::{Dataset, DatasetConfig};
use alic::model::dynatree::{DynaTree, DynaTreeConfig};
use alic::model::SurrogateModel;
use alic::sim::noise::NoiseProfile;
use alic::sim::profiler::SimulatedProfiler;
use alic::sim::space::ParamSpec;
use alic::sim::spapt::{spapt_kernel, SpaptKernel};
use alic::sim::KernelSpec;

fn toy_kernel(noise: NoiseProfile) -> KernelSpec {
    KernelSpec::new(
        "integration",
        vec![
            ParamSpec::unroll("u1"),
            ParamSpec::unroll("u2"),
            ParamSpec::cache_tile("t1"),
        ],
        1.0,
        0.5,
        noise,
    )
    .expect("non-empty parameter list")
    .with_surface_seed(31)
}

fn learner_config(plan: SamplingPlan, max_iterations: usize) -> LearnerConfig {
    LearnerConfig {
        initial_examples: 5,
        initial_observations: 8,
        candidates_per_iteration: 40,
        max_iterations,
        evaluate_every: 20,
        acquisition: Acquisition::Alc { reference_size: 30 },
        plan,
        criteria: CompletionCriteria::none(),
        seed: 17,
    }
}

fn run_plan(
    spec: &KernelSpec,
    plan: SamplingPlan,
    max_iterations: usize,
    seed: u64,
) -> (LearnerRun, Dataset) {
    let mut dataset_profiler = SimulatedProfiler::new(spec.clone(), 1);
    let dataset = Dataset::generate(
        &mut dataset_profiler,
        &DatasetConfig {
            configurations: 400,
            observations: 8,
            seed: 2,
        },
    );
    let split = dataset.split(300, 3);
    let mut profiler = SimulatedProfiler::new(spec.clone(), seed);
    let mut model = DynaTree::new(DynaTreeConfig {
        particles: 50,
        seed,
        ..Default::default()
    });
    let run = ActiveLearner::new(learner_config(plan, max_iterations), &mut profiler)
        .run(&mut model, &dataset, &split)
        .expect("learner runs to completion");
    (run, dataset)
}

#[test]
fn active_learning_beats_the_constant_baseline() {
    // The learned model must clearly beat a "predict the global mean"
    // baseline on the held-out set.
    let spec = toy_kernel(NoiseProfile::quiet());
    let (run, dataset) = run_plan(&spec, SamplingPlan::sequential(8), 200, 9);
    let final_rmse = run.curve.final_rmse().expect("curve has points");

    let runtimes: Vec<f64> = dataset.points().iter().map(|p| p.mean_runtime).collect();
    let global_mean = runtimes.iter().sum::<f64>() / runtimes.len() as f64;
    let baseline_rmse = (runtimes
        .iter()
        .map(|y| (y - global_mean) * (y - global_mean))
        .sum::<f64>()
        / runtimes.len() as f64)
        .sqrt();

    assert!(
        final_rmse < 0.8 * baseline_rmse,
        "learned model (RMSE {final_rmse:.4}) should beat the constant baseline ({baseline_rmse:.4})"
    );
}

#[test]
fn sequential_plan_reaches_the_common_error_cheaper_than_fixed() {
    // The headline claim at integration scale: for the same iteration budget,
    // the sequential plan spends far less profiling cost than the fixed plan
    // while reaching a comparable error.
    let spec = toy_kernel(NoiseProfile::moderate());
    let (fixed, _) = run_plan(&spec, SamplingPlan::fixed(8), 150, 11);
    let (sequential, _) = run_plan(&spec, SamplingPlan::sequential(8), 150, 11);

    let fixed_cost = fixed.ledger.total_seconds();
    let sequential_cost = sequential.ledger.total_seconds();
    assert!(
        sequential_cost < 0.5 * fixed_cost,
        "sequential cost {sequential_cost:.1} should be well below fixed cost {fixed_cost:.1}"
    );

    let fixed_best = fixed.curve.best_rmse().unwrap();
    let sequential_best = sequential.curve.best_rmse().unwrap();
    assert!(
        sequential_best < 2.5 * fixed_best,
        "sequential error {sequential_best:.4} should stay comparable to fixed error {fixed_best:.4}"
    );
}

#[test]
fn sequential_plan_degrades_gracefully_under_heavy_noise() {
    let quiet_spec = toy_kernel(NoiseProfile::quiet());
    let noisy_spec = toy_kernel(NoiseProfile {
        sigma_quiet: 0.02,
        sigma_loud: 0.3,
        pocket_fraction: 0.1,
        pocket_multiplier: 4.0,
        outlier_probability: 0.05,
        outlier_scale: 0.2,
        layout_jitter: 0.01,
    });
    let (quiet_run, _) = run_plan(&quiet_spec, SamplingPlan::sequential(8), 150, 13);
    let (noisy_run, _) = run_plan(&noisy_spec, SamplingPlan::sequential(8), 150, 13);
    // Both runs must stay numerically healthy, respect the per-example
    // observation cap, and heavy noise must degrade (never improve) the
    // achievable error relative to the quiet kernel.
    for run in [&quiet_run, &noisy_run] {
        assert!(run.curve.final_rmse().unwrap().is_finite());
        assert!(run
            .visited
            .iter()
            .all(|r| r.runtimes.count() <= 8usize.max(run.plan.max_observations())));
    }
    assert!(
        noisy_run.curve.best_rmse().unwrap() > quiet_run.curve.best_rmse().unwrap(),
        "heavy measurement noise should leave a larger residual error ({:.4} vs {:.4})",
        noisy_run.curve.best_rmse().unwrap(),
        quiet_run.curve.best_rmse().unwrap()
    );
}

#[test]
fn spapt_kernel_end_to_end_smoke() {
    // Full pipeline on a real (simulated) SPAPT kernel.
    let spec = spapt_kernel(SpaptKernel::Mvt);
    let (run, _) = run_plan(&spec, SamplingPlan::sequential(8), 100, 5);
    assert!(run.curve.final_rmse().unwrap().is_finite());
    assert!(run.ledger.runs() > 100);
    assert!(run.distinct_examples() >= 5);
}

#[test]
fn profiler_costs_match_the_ledger() {
    // The ledger must account for exactly the cost the profiler charged.
    let spec = toy_kernel(NoiseProfile::quiet());
    let mut dataset_profiler = SimulatedProfiler::new(spec.clone(), 1);
    let dataset = Dataset::generate(
        &mut dataset_profiler,
        &DatasetConfig {
            configurations: 200,
            observations: 4,
            seed: 2,
        },
    );
    let split = dataset.split(150, 3);
    let mut profiler = SimulatedProfiler::new(spec, 7);
    let mut model = DynaTree::new(DynaTreeConfig {
        particles: 30,
        seed: 7,
        ..Default::default()
    });
    let run = ActiveLearner::new(
        learner_config(SamplingPlan::sequential(6), 60),
        &mut profiler,
    )
    .run(&mut model, &dataset, &split)
    .unwrap();
    assert!((run.ledger.total_seconds() - profiler.total_cost()).abs() < 1e-9);
    assert_eq!(run.ledger.runs(), profiler.runs());
}

#[test]
fn model_predictions_vary_across_the_space_after_learning() {
    let spec = toy_kernel(NoiseProfile::quiet());
    let mut dataset_profiler = SimulatedProfiler::new(spec.clone(), 1);
    let dataset = Dataset::generate(
        &mut dataset_profiler,
        &DatasetConfig {
            configurations: 300,
            observations: 6,
            seed: 2,
        },
    );
    let split = dataset.split(220, 3);
    let mut profiler = SimulatedProfiler::new(spec, 23);
    let mut model = DynaTree::new(DynaTreeConfig {
        particles: 50,
        seed: 23,
        ..Default::default()
    });
    ActiveLearner::new(
        learner_config(SamplingPlan::sequential(8), 150),
        &mut profiler,
    )
    .run(&mut model, &dataset, &split)
    .unwrap();
    let predictions: Vec<f64> = split
        .test_indices()
        .iter()
        .map(|&i| model.predict(&dataset.features(i)).unwrap().mean)
        .collect();
    let min = predictions.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = predictions
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max - min > 0.05,
        "a useful model must differentiate configurations (spread {:.4})",
        max - min
    );
}
